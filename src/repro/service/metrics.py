"""Service observability: counters, histograms, gauges, Prometheus text.

A deliberately small, dependency-free metrics core.  All instruments
are thread-safe; :meth:`MetricsRegistry.render` produces Prometheus
text exposition format 0.0.4 (``# HELP``/``# TYPE`` plus samples), the
format every Prometheus-compatible scraper understands.

Callback gauges bridge external state into the scrape: the service
registers the solve-memo snapshot (:func:`repro.core.memo.
stats_snapshot`) and the response-cache stats as callbacks, so
``/metrics`` always reflects live values without polling threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Latency buckets (seconds) spanning cached microsecond hits to
#: multi-second simulation-backed experiment renders.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelValues = Tuple[str, ...]


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_labels(names: Sequence[str], values: LabelValues,
                   extra: str = "") -> str:
    pairs = [f'{name}="{_escape(value)}"'
             for name, value in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing, optionally labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def _key(self, labels: Dict[str, str]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}"
            f"{_format_labels(self.label_names, values)}"
            f" {_format_value(value)}"
            for values, value in items
        ]


class Gauge:
    """A settable value, or a live callback evaluated at scrape time.

    Optionally labelled: with ``label_names`` each label set carries
    its own value or callback (``set_callback``), and only label sets
    that have been touched are rendered.  Unlabelled gauges keep the
    original contract of always rendering exactly one sample
    (default ``0``).
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 callback: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        if callback is not None and self.label_names:
            raise ValueError(
                f"{name}: a labelled gauge takes per-label callbacks "
                f"via set_callback(), not a constructor callback"
            )
        self._callback = callback
        self._lock = threading.Lock()
        self._value = 0.0
        self._values: Dict[LabelValues, float] = {}
        self._callbacks: Dict[LabelValues, Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            if key is None:
                self._value = float(value)
            else:
                self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            if key is None:
                self._value += amount
            else:
                self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_callback(self, callback: Callable[[], float],
                     **labels: str) -> None:
        """Bind a scrape-time callback for one label set."""
        key = self._key(labels)
        with self._lock:
            if key is None:
                self._callback = callback
            else:
                self._callbacks[key] = callback

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        if key is None:
            if self._callback is not None:
                return float(self._callback())
            with self._lock:
                return self._value
        with self._lock:
            callback = self._callbacks.get(key)
            if callback is None:
                return self._values.get(key, 0.0)
        return float(callback())

    def _key(self, labels: Dict[str, str]):
        if not self.label_names:
            if labels:
                raise ValueError(
                    f"{self.name} takes no labels, got {sorted(labels)}"
                )
            return None
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> List[str]:
        if not self.label_names:
            return [f"{self.name} {_format_value(self.value())}"]
        with self._lock:
            keys = sorted(set(self._values) | set(self._callbacks))
            callbacks = dict(self._callbacks)
            values = dict(self._values)
        lines: List[str] = []
        for key in keys:
            callback = callbacks.get(key)
            value = (float(callback()) if callback is not None
                     else values.get(key, 0.0))
            lines.append(
                f"{self.name}{_format_labels(self.label_names, key)}"
                f" {_format_value(value)}"
            )
        return lines


class Histogram:
    """A labelled histogram with cumulative buckets, sum and count."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._lock = threading.Lock()
        # label values -> (per-bucket counts, sum, count)
        self._series: Dict[LabelValues, List] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = tuple(str(labels[name]) for name in self.label_names)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * len(self.buckets), 0.0, 0]
                self._series[key] = series
            if index < len(self.buckets):
                series[0][index] += 1
            series[1] += value
            series[2] += 1

    def snapshot(self, **labels: str):
        """(bucket_counts, total, count) for one label set (tests)."""
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return [0] * len(self.buckets), 0.0, 0
            return list(series[0]), series[1], series[2]

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-resolution quantile estimate (e.g. ``q=0.99`` → p99).

        Returns the upper bound of the bucket containing the q-th
        observation; +inf when it fell above the last bucket, 0.0 when
        the series is empty.
        """
        counts, _, total = self.snapshot(**labels)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return float("inf")

    def samples(self) -> List[str]:
        with self._lock:
            series = {key: (list(value[0]), value[1], value[2])
                      for key, value in sorted(self._series.items())}
        lines: List[str] = []
        for values, (counts, total, count) in series.items():
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(self.label_names, values, self._le(bound))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_format_labels(self.label_names, values, self._le(float('inf')))}"
                f" {count}"
            )
            lines.append(
                f"{self.name}_sum"
                f"{_format_labels(self.label_names, values)}"
                f" {repr(total)}"
            )
            lines.append(
                f"{self.name}_count"
                f"{_format_labels(self.label_names, values)}"
                f" {count}"
            )
        return lines

    @staticmethod
    def _le(bound: float) -> str:
        return f'le="{_format_value(bound)}"'


class MetricsRegistry:
    """Orders instruments and renders the scrape page."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: List = []

    def register(self, instrument):
        with self._lock:
            if any(i.name == instrument.name for i in self._instruments):
                raise ValueError(f"duplicate metric {instrument.name!r}")
            self._instruments.append(instrument)
        return instrument

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help_text, label_names))

    def gauge(self, name: str, help_text: str,
              label_names: Sequence[str] = (),
              callback: Optional[Callable[[], float]] = None) -> Gauge:
        return self.register(Gauge(name, help_text, label_names, callback))

    def histogram(self, name: str, help_text: str,
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self.register(Histogram(name, help_text, label_names,
                                       buckets))

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self._lock:
            instruments = list(self._instruments)
        lines: List[str] = []
        for instrument in instruments:
            lines.append(f"# HELP {instrument.name} {instrument.help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(instrument.samples())
        return "\n".join(lines) + "\n"

"""The HTTP application: routes, handlers, lifecycle.

Architecture
------------
:class:`BandwidthWallService` is a transport-free application object —
``dispatch(method, path, query, body)`` in, ``(status, headers, bytes)``
out — wired to the evaluation core:

* ``POST /v1/solve``   → :mod:`repro.core.scenario` (the CLI's exact
  solve/render path, so HTTP and terminal answers are byte-identical);
* ``POST /v1/sweep``   → :func:`repro.experiments.engine.sweep_grid`
  over the validated (ceas x budget) grid;
* ``GET /v1/experiments`` and ``/v1/experiments/{id}`` →
  :mod:`repro.experiments.runner` payload rendering;
* ``POST/GET/DELETE /v1/jobs[/{id}]`` → :mod:`repro.jobs` — durable,
  checkpointed background execution of experiment runs and sweep grids
  (see docs/JOBS.md);
* ``GET /healthz``     → liveness + drain state + job-queue health;
* ``GET /metrics``     → Prometheus text (incl. the ``jobs_*``
  families).

Expensive handlers run through a TTL+LRU :class:`~repro.service.cache.
ResponseCache` with single-flight coalescing, layered on the process
solve memo.  The HTTP transport is a stdlib ``ThreadingHTTPServer``
whose per-request concurrency is capped by a worker semaphore, and
shutdown is graceful: SIGTERM stops the accept loop, lets in-flight
requests drain up to a deadline, then closes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import shutil
import signal
import socket
import sqlite3
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from ..analysis.export import dumps_strict, strict_jsonable
from ..core import memo
from ..core.presets import paper_baseline_design
from ..core.scaling import BandwidthWallModel
from ..core.scenario import (
    ScenarioRequest,
    scenario_payload,
    solve_scenario,
)
from ..jobs import JobManager, JobRecord
from ..jobs.store import FAILED, STATUSES, SUCCEEDED
from ..resilience.admission import (
    CHEAP,
    EXPENSIVE,
    AdmissionController,
    SaturatedError,
)
from ..resilience.breaker import BreakerOpenError, CircuitBreaker
from ..resilience.deadline import (
    DEADLINE_HEADER,
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
    deadline_from_ms,
)
from ..resilience.faultinject import (
    FaultInjector,
    FaultyResponseCache,
    injector_from_env,
    load_profile,
)
from .cache import FlightWaitTimeout, ResponseCache
from ..core.solver import BracketError
from .errors import (
    ApiError,
    CircuitOpenError,
    ConflictError,
    DeadlineExceededError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    ServiceDrainingError,
    StoreUnavailableError,
    TooManyRequestsError,
    UnsolvableError,
    ValidationError,
    FieldError,
)
from .metrics import MetricsRegistry
from .validation import (
    SweepRequest,
    validate_job_request,
    validate_optimize_request,
    validate_solve_request,
    validate_sweep_request,
    validate_trace_request,
)

__all__ = [
    "ServiceConfig",
    "BandwidthWallService",
    "RunningService",
    "start_service",
    "serve",
]

#: Largest accepted request body; solve/sweep bodies are tiny, so
#: anything beyond this is a client bug (or abuse), not a use case.
MAX_BODY_BYTES = 1 << 20

_JSON = "application/json; charset=utf-8"
_PROM = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance.

    ``state_dir`` is the durable job store's home; ``None`` uses a
    fresh temporary directory (jobs work, but do not survive the
    instance — point every replica and external worker at a real
    directory for durability).  ``job_workers=0`` disables in-process
    execution: jobs queue up for external ``python -m
    repro.jobs.worker`` processes.

    ``processes > 1`` selects pre-fork scale-out (see
    :mod:`repro.scaleout.prefork`): N forked copies of this service
    share one listening port, one job store and one shared cache tier.
    ``shared_cache_dir`` holds that tier; set it explicitly to share a
    warm cache across restarts, leave it ``None`` for a per-group
    temporary directory (single-process instances leave the tier off
    entirely unless a directory is given).
    """

    host: str = "127.0.0.1"
    port: int = 8100
    workers: int = 8
    processes: int = 1
    shared_cache_dir: Optional[str] = None
    cache_ttl: float = 300.0
    cache_maxsize: int = 1024
    drain_deadline: float = 10.0
    state_dir: Optional[str] = None
    job_workers: int = 2
    job_lease_ttl: float = 30.0
    admission_capacity: int = 4
    admission_queue: int = 8
    admission_timeout: float = 0.5
    breaker_threshold: int = 5
    breaker_window: float = 30.0
    breaker_recovery: float = 5.0
    default_deadline_ms: Optional[float] = None
    fault_profile: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(f"workers must be positive, got {self.workers}")
        if self.processes <= 0:
            raise ValueError(
                f"processes must be positive, got {self.processes}"
            )
        if self.drain_deadline < 0:
            raise ValueError("drain_deadline must be non-negative")
        if self.job_workers < 0:
            raise ValueError(
                f"job_workers must be non-negative, got {self.job_workers}"
            )
        if self.job_lease_ttl <= 0:
            raise ValueError("job_lease_ttl must be positive")
        if self.admission_capacity <= 0:
            raise ValueError("admission_capacity must be positive")
        if self.admission_queue < 0:
            raise ValueError("admission_queue must be non-negative")
        if self.admission_timeout < 0:
            raise ValueError("admission_timeout must be non-negative")
        if self.breaker_threshold <= 0:
            raise ValueError("breaker_threshold must be positive")
        if self.breaker_window <= 0 or self.breaker_recovery <= 0:
            raise ValueError(
                "breaker_window and breaker_recovery must be positive"
            )
        if self.default_deadline_ms is not None \
                and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")


@dataclass(frozen=True)
class Response:
    """One handler's outcome before HTTP encoding."""

    status: int
    body: bytes
    content_type: str = _JSON
    headers: Tuple[Tuple[str, str], ...] = ()


#: Routes budgeted by admission control; everything else is cheap and
#: always admitted (healthz, metrics, single solves, job polling).
EXPENSIVE_ROUTES = frozenset([
    ("POST", "/v1/sweep"),
    ("GET", "/v1/experiments/{id}"),
    ("POST", "/v1/optimize"),
    ("POST", "/v1/traces"),
])


class BandwidthWallService:
    """Transport-free request handling plus service-wide state."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.started_monotonic = time.monotonic()
        self.draining = threading.Event()
        self.fault_injector = self._build_injector(config)
        # Shared cache tier (pre-fork scale-out).  Fault profiles take
        # precedence: an injected FaultyResponseCache exercises the
        # degradation paths, so the tier stays out of the way.
        self.shared_tier = None
        self._shared_memo = None
        self._previous_memo = None
        if self.fault_injector is not None:
            self.response_cache = FaultyResponseCache(
                self.fault_injector,
                maxsize=config.cache_maxsize, ttl=config.cache_ttl,
            )
        elif config.shared_cache_dir is not None:
            # Imported lazily: repro.scaleout.shared_cache pulls in
            # repro.service, which is mid-import right now.
            from ..scaleout.shared_cache import (
                SharedCacheTier,
                SharedMemoCache,
                TieredResponseCache,
            )

            self.shared_tier = SharedCacheTier(config.shared_cache_dir)
            self.response_cache = TieredResponseCache(
                self.shared_tier,
                maxsize=config.cache_maxsize, ttl=config.cache_ttl,
            )
            # Demote the process-global solve memo to an L1 over the
            # tier; the previous memo is restored on shutdown so other
            # services in this process (tests) are unaffected.
            self._shared_memo = SharedMemoCache(self.shared_tier)
            self._previous_memo = memo.install_cache(self._shared_memo)
        else:
            self.response_cache = ResponseCache(
                maxsize=config.cache_maxsize, ttl=config.cache_ttl
            )
        self.admission = AdmissionController(
            capacity=config.admission_capacity,
            queue_limit=config.admission_queue,
            queue_timeout=config.admission_timeout,
        )
        self.store_breaker = CircuitBreaker(
            name="job-store",
            failure_threshold=config.breaker_threshold,
            window=config.breaker_window,
            recovery_time=config.breaker_recovery,
            on_transition=self._on_breaker_transition,
        )
        self._init_metrics()
        self._owns_state_dir = config.state_dir is None
        self.state_dir = (config.state_dir or
                          tempfile.mkdtemp(prefix="bandwidth-wall-jobs-"))
        self.job_manager = JobManager(
            self.state_dir,
            workers=config.job_workers,
            lease_ttl=config.job_lease_ttl,
            on_chunk=lambda seconds: self.jobs_chunk_latency.observe(
                seconds
            ),
            fault_injector=self.fault_injector,
        )
        self.job_manager.start()
        # (method, compiled path pattern, handler, route label)
        self._routes: List[Tuple[str, Any, Callable, str]] = [
            ("GET", re.compile(r"^/healthz$"), self._handle_healthz,
             "/healthz"),
            ("GET", re.compile(r"^/metrics$"), self._handle_metrics,
             "/metrics"),
            ("POST", re.compile(r"^/v1/solve$"), self._handle_solve,
             "/v1/solve"),
            ("POST", re.compile(r"^/v1/sweep$"), self._handle_sweep,
             "/v1/sweep"),
            ("GET", re.compile(r"^/v1/experiments$"),
             self._handle_experiments, "/v1/experiments"),
            ("GET", re.compile(r"^/v1/experiments/(?P<eid>[^/]+)$"),
             self._handle_experiment, "/v1/experiments/{id}"),
            ("POST", re.compile(r"^/v1/jobs$"), self._handle_job_submit,
             "/v1/jobs"),
            ("GET", re.compile(r"^/v1/jobs$"), self._handle_job_list,
             "/v1/jobs"),
            ("GET", re.compile(r"^/v1/jobs/(?P<jid>[^/]+)$"),
             self._handle_job_get, "/v1/jobs/{id}"),
            ("DELETE", re.compile(r"^/v1/jobs/(?P<jid>[^/]+)$"),
             self._handle_job_cancel, "/v1/jobs/{id}"),
            ("POST", re.compile(r"^/v1/optimize$"),
             self._handle_optimize_submit, "/v1/optimize"),
            ("GET", re.compile(r"^/v1/optimize/(?P<jid>[^/]+)$"),
             self._handle_optimize_get, "/v1/optimize/{id}"),
            ("POST", re.compile(r"^/v1/traces$"),
             self._handle_trace_submit, "/v1/traces"),
            ("GET", re.compile(r"^/v1/traces/(?P<jid>[^/]+)$"),
             self._handle_trace_get, "/v1/traces/{id}"),
        ]

    @staticmethod
    def _build_injector(config: ServiceConfig) -> Optional[FaultInjector]:
        if config.fault_profile:
            return FaultInjector(load_profile(config.fault_profile))
        return injector_from_env()

    def _on_breaker_transition(self, from_state: str,
                               to_state: str) -> None:
        # Fires from inside the breaker lock; the counter is lock-free
        # enough (its own lock) that this cannot deadlock.
        self.breaker_transitions.inc(**{
            "dependency": "job-store",
            "from": from_state,
            "to": to_state,
        })

    def _init_metrics(self) -> None:
        registry = MetricsRegistry()
        self.metrics = registry
        self.requests_total = registry.counter(
            "service_requests_total",
            "HTTP requests handled, by route, method and status.",
            ("route", "method", "status"),
        )
        self.request_latency = registry.histogram(
            "service_request_duration_seconds",
            "Request handling latency in seconds, by route.",
            ("route",),
        )
        self.inflight = registry.gauge(
            "service_inflight_requests",
            "Requests currently being handled.",
        )
        registry.gauge(
            "service_uptime_seconds",
            "Seconds since this service instance started.",
            callback=lambda: time.monotonic() - self.started_monotonic,
        )
        cache_stats = self.response_cache.stats
        registry.gauge(
            "service_response_cache_hits_total",
            "Response-cache lookups served from a stored response.",
            callback=lambda: cache_stats().hits,
        )
        registry.gauge(
            "service_response_cache_misses_total",
            "Response-cache lookups that computed a fresh response.",
            callback=lambda: cache_stats().misses,
        )
        registry.gauge(
            "service_response_cache_coalesced_total",
            "Requests that joined an identical in-flight computation.",
            callback=lambda: cache_stats().coalesced,
        )
        registry.gauge(
            "service_response_cache_evictions_total",
            "Responses evicted by the LRU bound.",
            callback=lambda: cache_stats().evictions,
        )
        registry.gauge(
            "service_response_cache_expirations_total",
            "Responses dropped because their TTL elapsed.",
            callback=lambda: cache_stats().expirations,
        )
        registry.gauge(
            "service_response_cache_size",
            "Responses currently stored.",
            callback=lambda: cache_stats().size,
        )
        registry.gauge(
            "service_response_cache_hit_rate",
            "Fraction of lookups served without computing (hit+coalesced).",
            callback=lambda: cache_stats().hit_rate,
        )
        registry.gauge(
            "solve_memo_hits_total",
            "Solve-memo lookups served from cache (process-wide).",
            callback=lambda: memo.stats_snapshot().hits,
        )
        registry.gauge(
            "solve_memo_misses_total",
            "Solve-memo lookups that ran the bisection (process-wide).",
            callback=lambda: memo.stats_snapshot().misses,
        )
        registry.gauge(
            "solve_memo_size",
            "Distinct solves currently memoized (process-wide).",
            callback=lambda: memo.stats_snapshot().size,
        )
        registry.gauge(
            "solve_memo_hit_rate",
            "Fraction of solve lookups served from the memo.",
            callback=lambda: memo.stats_snapshot().hit_rate,
        )
        # Resilience.  Shed/deadline counters are bumped on the request
        # path; breaker state is a live per-dependency gauge.
        self.shed_total = registry.counter(
            "resilience_shed_total",
            "Requests shed by admission control, by reason.",
            ("reason",),
        )
        self.deadline_exceeded_total = registry.counter(
            "request_deadline_exceeded_total",
            "Requests that outlived their deadline, by route.",
            ("route",),
        )
        self.breaker_transitions = registry.counter(
            "resilience_breaker_transitions_total",
            "Circuit-breaker state transitions, by dependency and edge.",
            ("dependency", "from", "to"),
        )
        breaker_state = registry.gauge(
            "resilience_breaker_state",
            "Breaker state per dependency: 0 closed, 1 half-open, 2 open.",
            ("dependency",),
        )
        breaker_state.set_callback(
            self.store_breaker.state_value, dependency="job-store"
        )
        registry.gauge(
            "resilience_breaker_opened_total",
            "Times the job-store breaker has tripped open.",
            callback=lambda: self.store_breaker.snapshot()["opened_total"],
        )
        registry.gauge(
            "resilience_admission_active",
            "Expensive requests currently holding an admission slot.",
            callback=self.admission.active,
        )
        registry.gauge(
            "resilience_admission_waiting",
            "Expensive requests currently queued for admission.",
            callback=self.admission.waiting,
        )
        # Job subsystem.  Backlog/liveness gauges read the durable
        # store at scrape time, so external workers pointed at the same
        # state dir are reflected too.
        self.jobs_submitted = registry.counter(
            "jobs_submitted_total",
            "Jobs accepted via POST /v1/jobs, by kind.",
            ("kind",),
        )
        self.jobs_chunk_latency = registry.histogram(
            "jobs_chunk_duration_seconds",
            "Wall seconds per executed job chunk (in-process workers).",
        )
        # A faulty or injected store must not take the whole scrape
        # page down with it: broken callbacks render NaN, not a 500.
        def store_gauge(read: Callable[[], float]) -> Callable[[], float]:
            def safe() -> float:
                try:
                    return float(read())
                except Exception:  # noqa: BLE001 - scrape must survive
                    return float("nan")
            return safe

        registry.gauge(
            "jobs_queue_depth",
            "Claimable jobs: queued plus expired-lease running.",
            callback=store_gauge(
                lambda: self.job_manager.store.queue_depth()),
        )
        registry.gauge(
            "jobs_running",
            "Jobs currently executing under a live lease.",
            callback=store_gauge(
                lambda: self.job_manager.store.running_count()),
        )
        registry.gauge(
            "jobs_retries_total",
            "Chunk-failure retries recorded across all jobs.",
            callback=store_gauge(
                lambda: self.job_manager.store.retries_total()),
        )
        registry.gauge(
            "jobs_succeeded_total",
            "Jobs that finished with a complete artifact.",
            callback=store_gauge(
                lambda: self.job_manager.store.counts()["succeeded"]),
        )
        registry.gauge(
            "jobs_failed_total",
            "Jobs that exhausted their retry budget.",
            callback=store_gauge(
                lambda: self.job_manager.store.counts()["failed"]),
        )
        registry.gauge(
            "jobs_cancelled_total",
            "Jobs cancelled before completing.",
            callback=store_gauge(
                lambda: self.job_manager.store.counts()["cancelled"]),
        )
        registry.gauge(
            "jobs_workers_alive",
            "In-process job worker threads currently alive.",
            callback=lambda: self.job_manager.workers_alive(),
        )
        # Optimizer subsystem (POST /v1/optimize).
        self.optimize_submitted = registry.counter(
            "optimize_jobs_submitted_total",
            "Optimize jobs accepted via POST /v1/optimize, by strategy.",
            ("strategy",),
        )
        self.optimize_evaluations = registry.counter(
            "optimize_evaluations_budgeted_total",
            "Design-point evaluations budgeted by accepted optimize "
            "jobs (valid configurations, or generations x population).",
        )
        optimize_jobs = registry.gauge(
            "optimize_jobs",
            "Optimize jobs in the store, by status.",
            ("status",),
        )
        def optimize_status_gauge(status: str) -> Callable[[], float]:
            return store_gauge(
                lambda: self.job_manager.store
                .kind_status_counts("optimize")[status])

        for status in ("queued", "running", "succeeded", "failed",
                       "cancelled"):
            optimize_jobs.set_callback(optimize_status_gauge(status),
                                       status=status)
        # Trace-simulation subsystem (POST /v1/traces).
        self.traces_submitted = registry.counter(
            "traces_jobs_submitted_total",
            "Trace jobs accepted via POST /v1/traces, by source.",
            ("source",),
        )
        self.traces_accesses = registry.counter(
            "traces_accesses_budgeted_total",
            "Simulated memory accesses budgeted by accepted trace jobs.",
        )
        trace_jobs = registry.gauge(
            "traces_jobs",
            "Trace jobs in the store, by status.",
            ("status",),
        )

        def trace_status_gauge(status: str) -> Callable[[], float]:
            return store_gauge(
                lambda: self.job_manager.store
                .kind_status_counts("trace")[status])

        for status in ("queued", "running", "succeeded", "failed",
                       "cancelled"):
            trace_jobs.set_callback(trace_status_gauge(status),
                                    status=status)
        # Scale-out: the shared cache tier aggregates event counters
        # across every process in the pre-fork group, so any child's
        # /metrics page shows group-wide cache behaviour.
        if self.shared_tier is not None:
            tier = self.shared_tier

            def tier_counter(name: str) -> Callable[[], float]:
                return store_gauge(
                    lambda: tier.counters_total().get(name, 0))

            shared_total = registry.gauge(
                "scaleout_shared_cache_total",
                "Shared-tier cache events summed over every process, "
                "by namespace and event.",
                ("namespace", "event"),
            )
            for namespace, events in (
                ("response", ("hit", "miss", "eviction")),
                ("memo", ("hit", "miss", "store", "eviction")),
            ):
                for event in events:
                    shared_total.set_callback(
                        tier_counter(f"{namespace}.{event}"),
                        namespace=namespace, event=event,
                    )
            shared_entries = registry.gauge(
                "scaleout_shared_cache_entries",
                "Entries currently stored in the shared tier, "
                "by namespace.",
                ("namespace",),
            )
            for namespace in ("response", "memo"):
                shared_entries.set_callback(
                    store_gauge(
                        lambda ns=namespace: tier.entry_count(ns)),
                    namespace=namespace,
                )
            registry.gauge(
                "scaleout_processes_seen",
                "Distinct processes that have recorded shared-cache "
                "events.",
                callback=store_gauge(tier.processes_seen),
            )

    # -- dispatch ------------------------------------------------------

    def dispatch(self, method: str, target: str, body: bytes,
                 headers: Optional[Any] = None) -> Response:
        """Route one request, instrumenting latency/counters/in-flight.

        ``headers`` is any mapping with ``.get`` (the stdlib handler's
        message object or a plain dict); only ``X-Request-Deadline-Ms``
        is consulted.  The request runs inside a thread-local deadline
        scope and, for expensive routes, under admission control.
        """
        split = urlsplit(target)
        path = split.path
        query = parse_qs(split.query)
        route_label = path
        started = time.monotonic()
        self.inflight.inc()
        response: Optional[Response] = None
        try:
            try:
                deadline = self._request_deadline(headers)
                route = self._match(method, path)
                if route is None:
                    raise self._unknown_route(method, path)
                pattern_match, handler, route_label = route
                cost = (EXPENSIVE if (method, route_label) in
                        EXPENSIVE_ROUTES else CHEAP)
                with deadline_scope(deadline):
                    try:
                        with self.admission.admit(cost, deadline=deadline):
                            check_deadline("admission")
                            response = handler(pattern_match, query, body)
                    except SaturatedError as error:
                        self.shed_total.inc(reason=error.reason)
                        raise TooManyRequestsError(
                            str(error), {"reason": error.reason},
                            retry_after=error.retry_after,
                        ) from None
            except (DeadlineExceeded, FlightWaitTimeout) as error:
                self.deadline_exceeded_total.inc(route=route_label)
                response = self._error_response(
                    DeadlineExceededError(str(error))
                )
            except BreakerOpenError as error:
                response = self._error_response(CircuitOpenError(
                    str(error), retry_after=error.retry_after
                ))
            except ApiError as error:
                response = self._error_response(error)
            except Exception as error:  # noqa: BLE001 - service boundary
                response = self._error_response(ApiError(
                    f"internal error: {type(error).__name__}: {error}"
                ))
            return response
        finally:
            elapsed = time.monotonic() - started
            self.inflight.dec()
            status = str(response.status) if response is not None else "500"
            self.requests_total.inc(
                route=route_label, method=method, status=status
            )
            self.request_latency.observe(elapsed, route=route_label)

    def route_cost(self, method: str, path: str) -> str:
        """Cost class for a path — the transport uses this to let cheap
        requests bypass the worker-slot semaphore entirely."""
        for route_method, pattern, _, label in self._routes:
            if route_method == method and pattern.match(path):
                return (EXPENSIVE if (method, label) in EXPENSIVE_ROUTES
                        else CHEAP)
        return CHEAP

    def _request_deadline(self,
                          headers: Optional[Any]) -> Optional[Deadline]:
        value = None
        if headers is not None:
            value = headers.get(DEADLINE_HEADER)
            if value is None and hasattr(headers, "keys"):
                # Plain dicts are case-sensitive; accept the lowercase
                # spelling tests and proxies tend to produce.
                value = headers.get(DEADLINE_HEADER.lower())
        if value is None:
            if self.config.default_deadline_ms is not None:
                return Deadline(self.config.default_deadline_ms / 1000.0)
            return None
        try:
            return deadline_from_ms(value)
        except ValueError as error:
            raise ValidationError(
                [FieldError(DEADLINE_HEADER, str(error))],
                "invalid deadline header",
            ) from None

    def _match(self, method: str, path: str):
        allowed: List[str] = []
        for route_method, pattern, handler, label in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            if route_method == method:
                return match, handler, label
            allowed.append(route_method)
        if allowed:
            raise MethodNotAllowedError(
                f"{method} not allowed on {path}",
                {"allowed": sorted(set(allowed))},
            )
        return None

    def _unknown_route(self, method: str, path: str) -> NotFoundError:
        return NotFoundError(
            f"no route for {method} {path}",
            {"routes": sorted({f"{m} {label}"
                               for m, _, _, label in self._routes})},
        )

    # -- handlers ------------------------------------------------------

    def _handle_healthz(self, match, query, body) -> Response:
        draining = self.draining.is_set()
        # A broken store must not take liveness down with it — the
        # whole point of /healthz is answering while things burn.
        try:
            jobs: Dict[str, Any] = self.job_manager.stats()
        except Exception as error:  # noqa: BLE001 - liveness survives
            jobs = {"error": f"{type(error).__name__}: {error}"}
        resilience: Dict[str, Any] = {
            "admission": self.admission.snapshot(),
            "breakers": [self.store_breaker.snapshot()],
        }
        if self.fault_injector is not None:
            resilience["fault_injection"] = self.fault_injector.stats()
        payload = {
            "status": "draining" if draining else "ok",
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "experiments": len(self._experiment_ids()),
            "jobs": jobs,
            "resilience": resilience,
        }
        if self.shared_tier is not None:
            try:
                scaleout: Dict[str, Any] = {
                    "pid": os.getpid(),
                    "processes": self.config.processes,
                    "shared_cache_dir": str(self.shared_tier.cache_dir),
                    "processes_seen": self.shared_tier.processes_seen(),
                    "counters": self.shared_tier.counters_total(),
                }
            except Exception as error:  # noqa: BLE001 - liveness first
                scaleout = {"error": f"{type(error).__name__}: {error}"}
            payload["scaleout"] = scaleout
        return self._json_response(payload, status=503 if draining else 200)

    def _handle_metrics(self, match, query, body) -> Response:
        return Response(200, self.metrics.render().encode("utf-8"), _PROM)

    @staticmethod
    def _flight_wait() -> Optional[float]:
        """Cap a coalesced wait at the request's remaining deadline."""
        deadline = current_deadline()
        return deadline.remaining() if deadline is not None else None

    def _handle_solve(self, match, query, body) -> Response:
        request = validate_solve_request(self._parse_json(body))
        key = ("solve", request)
        try:
            payload, _ = self.response_cache.get_or_compute(
                key, lambda: scenario_payload(solve_scenario(request)),
                wait_timeout=self._flight_wait(),
            )
        except (BracketError, ValueError) as error:
            raise UnsolvableError(str(error)) from None
        return self._json_response(payload)

    def _handle_sweep(self, match, query, body) -> Response:
        request = validate_sweep_request(self._parse_json(body))
        key = ("sweep", request)
        try:
            payload, _ = self.response_cache.get_or_compute(
                key, lambda: self._compute_sweep(request),
                wait_timeout=self._flight_wait(),
            )
        except (BracketError, ValueError) as error:
            raise UnsolvableError(str(error)) from None
        return self._json_response(payload)

    def _compute_sweep(self, request: SweepRequest) -> Dict[str, Any]:
        from ..experiments.engine import GridPoint, sweep_grid

        effect, labels = ScenarioRequest(
            techniques=request.techniques
        ).combined_effect()
        model = BandwidthWallModel(paper_baseline_design(),
                                   alpha=request.alpha)
        points = [
            GridPoint(total_ceas=ceas, traffic_budget=budget, effect=effect)
            for ceas in request.ceas
            for budget in request.budgets
        ]
        solutions = sweep_grid(model, points)
        rows = [
            {
                "ceas": point.total_ceas,
                "budget": point.traffic_budget,
                "cores": solution.cores,
                "continuous_cores": solution.continuous_cores,
                "core_area_share": solution.core_area_share,
                "effective_cache_per_core":
                    solution.effective_cache_per_core,
                "area_limited": solution.area_limited,
            }
            for point, solution in zip(points, solutions)
        ]
        return {
            "request": {
                "ceas": list(request.ceas),
                "budgets": list(request.budgets),
                "alpha": request.alpha,
                "techniques": list(request.techniques),
            },
            "techniques": list(labels),
            "count": len(rows),
            "points": rows,
        }

    def _handle_experiments(self, match, query, body) -> Response:
        from ..experiments.runner import experiment_title

        ids = self._experiment_ids()
        payload = {
            "count": len(ids),
            "experiments": [
                {"id": eid, "title": experiment_title(eid)} for eid in ids
            ],
        }
        return self._json_response(payload)

    def _handle_experiment(self, match, query, body) -> Response:
        from ..experiments.runner import (
            experiment_payload,
            resolve_experiment_id,
        )

        raw_id = unquote(match.group("eid"))
        try:
            key = resolve_experiment_id(raw_id)
        except KeyError:
            raise NotFoundError(
                f"unknown experiment {raw_id!r}",
                {"valid_ids": self._experiment_ids()},
            ) from None
        include_report = self._flag(query, "report")
        payload, _ = self.response_cache.get_or_compute(
            ("experiment", key, include_report),
            lambda: experiment_payload(key, include_report=include_report),
            wait_timeout=self._flight_wait(),
        )
        return self._json_response(payload)

    # -- job handlers --------------------------------------------------

    def _store_call(self, func: Callable, *args: Any,
                    **kwargs: Any) -> Any:
        """Run a job-store-backed call under the circuit breaker.

        Breaker-open refusals surface as 503 ``circuit_open`` (handled
        in dispatch); store faults count against the breaker window and
        surface as 503 ``store_unavailable``.
        """
        try:
            return self.store_breaker.call(func, *args, **kwargs)
        except BreakerOpenError:
            raise
        except (sqlite3.Error, OSError) as error:
            raise StoreUnavailableError(
                f"job store unavailable: {error}"
            ) from None

    def _handle_job_submit(self, match, query, body) -> Response:
        if self.draining.is_set():
            raise ServiceDrainingError(
                "service is draining; job submissions are not accepted"
            )
        request = validate_job_request(self._parse_json(body))
        record = self._store_call(
            self.job_manager.submit,
            request.spec, max_attempts=request.max_attempts,
        )
        self.jobs_submitted.inc(kind=record.kind)
        return self._json_response(self._job_payload(record), status=202)

    def _handle_job_list(self, match, query, body) -> Response:
        status = None
        values = query.get("status", [])
        if values:
            status = values[-1].lower()
            if status not in STATUSES:
                raise ValidationError([FieldError(
                    "status",
                    f"must be one of {sorted(STATUSES)}, got {status!r}",
                )])
        records = self._store_call(self.job_manager.list_jobs,
                                   status=status)
        return self._json_response({
            "count": len(records),
            "jobs": [self._job_payload(record, include_result=False)
                     for record in records],
        })

    def _handle_job_get(self, match, query, body) -> Response:
        record = self._job_record(match)
        return self._json_response(self._job_payload(record))

    def _handle_job_cancel(self, match, query, body) -> Response:
        record = self._job_record(match)
        if record.status in (SUCCEEDED, FAILED):
            raise ConflictError(
                f"job {record.id} already {record.status}; "
                f"only queued or running jobs can be cancelled",
                {"status": record.status},
            )
        record = self._store_call(self.job_manager.cancel, record.id)
        return self._json_response(
            self._job_payload(record, include_result=False)
        )

    def _handle_optimize_submit(self, match, query, body) -> Response:
        if self.draining.is_set():
            raise ServiceDrainingError(
                "service is draining; optimize submissions are not "
                "accepted"
            )
        request = validate_optimize_request(self._parse_json(body))
        record = self._store_call(
            self.job_manager.submit,
            request.spec, max_attempts=request.max_attempts,
        )
        self.jobs_submitted.inc(kind=record.kind)
        self.optimize_submitted.inc(strategy=request.spec.strategy)
        self.optimize_evaluations.inc(request.num_evaluations)
        return self._json_response(self._job_payload(record), status=202)

    def _handle_optimize_get(self, match, query, body) -> Response:
        record = self._job_record(match)
        if record.kind != "optimize":
            raise NotFoundError(
                f"job {record.id!r} is a {record.kind} job, not an "
                f"optimize job; fetch it via GET /v1/jobs/{record.id}"
            )
        return self._json_response(self._job_payload(record))

    def _handle_trace_submit(self, match, query, body) -> Response:
        if self.draining.is_set():
            raise ServiceDrainingError(
                "service is draining; trace submissions are not accepted"
            )
        request = validate_trace_request(self._parse_json(body))
        record = self._store_call(
            self.job_manager.submit,
            request.spec, max_attempts=request.max_attempts,
        )
        self.jobs_submitted.inc(kind=record.kind)
        self.traces_submitted.inc(source=request.source)
        self.traces_accesses.inc(request.total_accesses)
        return self._json_response(self._job_payload(record), status=202)

    def _handle_trace_get(self, match, query, body) -> Response:
        record = self._job_record(match)
        if record.kind != "trace":
            raise NotFoundError(
                f"job {record.id!r} is a {record.kind} job, not a "
                f"trace job; fetch it via GET /v1/jobs/{record.id}"
            )
        return self._json_response(self._job_payload(record))

    def _job_record(self, match) -> JobRecord:
        job_id = unquote(match.group("jid"))
        record = self._store_call(self.job_manager.get, job_id)
        if record is None:
            raise NotFoundError(f"unknown job {job_id!r}")
        return record

    @staticmethod
    def _job_payload(record: JobRecord,
                     include_result: bool = True) -> Dict[str, Any]:
        """One job's API shape: status + progress (+ result when done)."""
        payload: Dict[str, Any] = {
            "id": record.id,
            "kind": record.kind,
            "status": record.status,
            "cancel_requested": record.cancel_requested,
            "spec": record.spec,
            "progress": {
                "chunks_done": record.chunks_done,
                "chunks_total": record.chunks_total,
                "fraction": record.progress,
            },
            "attempts": record.attempts,
            "retries": record.failures,
            "max_attempts": record.max_attempts,
            "created_at": record.created_at,
            "started_at": record.started_at,
            "finished_at": record.finished_at,
            "error": record.error,
        }
        if include_result and record.status == SUCCEEDED \
                and record.result_text is not None:
            # The stored artifact is golden-encoded (bare NaN allowed);
            # strictify here so the HTTP payload stays valid JSON.
            payload["result"] = strict_jsonable(
                json.loads(record.result_text)
            )
        return payload

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _experiment_ids() -> List[str]:
        from ..experiments.runner import experiment_ids

        return experiment_ids()

    @staticmethod
    def _flag(query: Dict[str, List[str]], name: str) -> bool:
        values = query.get(name, [])
        return bool(values) and values[-1].lower() not in ("0", "false", "no")

    @staticmethod
    def _parse_json(body: bytes) -> Any:
        if not body:
            return {}
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValidationError(
                [FieldError("$", f"body is not valid JSON: {error}")],
                "request body must be JSON",
            ) from None

    @staticmethod
    def _json_response(payload: Any, status: int = 200) -> Response:
        text = dumps_strict(payload, indent=2) + "\n"
        return Response(status, text.encode("utf-8"), _JSON)

    def _error_response(self, error: ApiError) -> Response:
        response = self._json_response(error.payload(),
                                       status=error.status)
        if error.retry_after is not None:
            response = dataclasses.replace(response, headers=(
                ("Retry-After", str(max(1, int(error.retry_after + 0.5)))),
            ))
        return response

    # -- lifecycle -----------------------------------------------------

    def shutdown_jobs(self, deadline: float = 10.0) -> bool:
        """Drain the worker pool: in-flight jobs checkpoint their
        current chunk and return to the queue, resumable on next boot.

        Returns True when every worker thread exited in time.  The
        auto-created temporary state dir is removed only after a clean
        drain — never out from under a live worker.
        """
        stopped = self.job_manager.stop(deadline)
        if self._shared_memo is not None:
            # Persist the buffered tail of memo writes/counters, then
            # give the process its original memo back (tests run many
            # services in one process; the swap must not outlive us).
            try:
                self._shared_memo.flush()
            except (sqlite3.Error, OSError):
                pass
            memo.install_cache(self._previous_memo)
            self._shared_memo = None
            self._previous_memo = None
        if stopped and self._owns_state_dir:
            shutil.rmtree(self.state_dir, ignore_errors=True)
        return stopped


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default backlog of 5 drops connections when a
    # burst of clients connects at once; the worker semaphore, not the
    # accept queue, is the intended concurrency limit.
    request_queue_size = 128

    def __init__(self, address, handler_class,
                 service: BandwidthWallService, *,
                 inherited_socket: Optional[socket.socket] = None) -> None:
        if inherited_socket is None:
            super().__init__(address, handler_class)
        else:
            # Pre-fork scale-out: adopt an externally bound listening
            # socket (SO_REUSEPORT sibling or the supervisor's fd)
            # instead of binding our own.
            super().__init__(address, handler_class,
                             bind_and_activate=False)
            self.socket.close()  # the unbound default, ours to close
            self.socket = inherited_socket
            self.server_address = inherited_socket.getsockname()
            host, port = self.server_address[:2]
            self.server_name = socket.getfqdn(host)
            self.server_port = port
            self.server_activate()
        self.service = service
        self.worker_slots = threading.BoundedSemaphore(
            service.config.workers
        )


class _RequestHandler(BaseHTTPRequestHandler):
    server_version = "bandwidth-wall-service/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        service: BandwidthWallService = self.server.service
        try:
            body = self._read_body()
        except ApiError as error:
            self._send(service._error_response(error))
            return
        # Cheap routes bypass the worker semaphore: /healthz and job
        # polling must answer fast even when every slot is occupied by
        # multi-second sweeps (that's what admission control bounds).
        if service.route_cost(method, urlsplit(self.path).path) == CHEAP:
            response = service.dispatch(method, self.path, body,
                                        self.headers)
        else:
            with self.server.worker_slots:
                response = service.dispatch(method, self.path, body,
                                            self.headers)
        self._send(response)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise PayloadTooLargeError(
                f"body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length) if length else b""

    def _send(self, response: Response) -> None:
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            for name, value in response.headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to salvage

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # access logging is the metrics endpoint's job


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


class RunningService:
    """A bound, listening service instance (in-process)."""

    def __init__(self, service: BandwidthWallService,
                 server: _ServiceHTTPServer) -> None:
        self.service = service
        self.server = server
        self._stopped = False
        self._drain_result = False
        self._thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            name="service-accept", daemon=True,
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def client(self, timeout: float = 30.0):
        from .client import ServiceClient

        return ServiceClient(self.host, self.port, timeout=timeout)

    def drain_and_stop(self,
                       deadline: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, drain requests and jobs.

        HTTP first (stop the accept loop, let in-flight requests
        finish), then the job workers — each checkpoints its current
        chunk and releases its lease, so every in-flight job resumes
        from where it stopped on the next boot.  Returns True when both
        drained before the deadline; stragglers (daemon threads) are
        abandoned otherwise.  Idempotent.
        """
        if deadline is None:
            deadline = self.service.config.drain_deadline
        if self._stopped:
            return self._drain_result
        self._stopped = True
        self.service.draining.set()
        self.server.shutdown()
        self._thread.join(timeout=max(deadline, 0.1))
        drained = self._wait_for_idle(deadline)
        jobs_drained = self.service.shutdown_jobs(deadline)
        self.server.server_close()
        self._drain_result = drained and jobs_drained
        return self._drain_result

    def _wait_for_idle(self, deadline: float) -> bool:
        limit = time.monotonic() + deadline
        while self.service.inflight.value() > 0:
            if time.monotonic() >= limit:
                return False
            time.sleep(0.02)
        return True


def start_service(config: ServiceConfig = ServiceConfig(),
                  *, port: Optional[int] = None) -> RunningService:
    """Bind and start serving in background threads; returns the handle.

    ``port=0`` (or a config with port 0) binds an ephemeral port —
    read the actual one from the returned handle.
    """
    if port is not None:
        config = dataclasses.replace(config, port=port)
    service = BandwidthWallService(config)
    server = _ServiceHTTPServer(
        (config.host, config.port), _RequestHandler, service
    )
    return RunningService(service, server)


def serve(config: ServiceConfig = ServiceConfig()) -> int:
    """Blocking entry point behind ``bandwidth-wall serve``.

    Installs SIGTERM/SIGINT handlers that trigger a graceful drain;
    returns 0 on a clean (fully drained) shutdown, 1 otherwise.

    ``processes > 1`` hands off to the pre-fork supervisor — N forked
    copies of this service behind one port and one shared cache tier.
    """
    if config.processes > 1:
        from ..scaleout.prefork import serve_prefork

        return serve_prefork(config)
    try:
        running = start_service(config)
    except OSError as error:
        print(f"cannot bind {config.host}:{config.port}: {error}",
              file=sys.stderr)
        return 1

    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, request_stop)
    print(f"bandwidth-wall service listening on {running.url} "
          f"({config.workers} workers, cache ttl {config.cache_ttl:g}s, "
          f"{config.job_workers} job workers, "
          f"state dir {running.service.state_dir})",
          flush=True)
    injector = running.service.fault_injector
    if injector is not None:
        print(f"FAULT INJECTION ACTIVE: profile "
              f"{injector.profile.name!r} (seed {injector.profile.seed})",
              flush=True)
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    drained = running.drain_and_stop()
    print("bandwidth-wall service stopped"
          + ("" if drained else " (drain deadline exceeded)"), flush=True)
    return 0 if drained else 1

"""Request validation: JSON bodies → typed scenario/sweep requests.

Validation is *total*: every field is checked and every problem is
collected, so a 400 response names all offending fields at once with
the same diagnostics the CLI prints (unknown technique labels list the
valid ones, bad parameters name the technique, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..core.scenario import ScenarioRequest, parse_technique_spec
from .errors import FieldError, ValidationError

__all__ = [
    "MAX_SWEEP_POINTS",
    "SweepRequest",
    "validate_solve_request",
    "validate_sweep_request",
]

#: Upper bound on one sweep's grid (|ceas| x |budgets|).  A request
#: above it is a 400, not a multi-minute stall.
MAX_SWEEP_POINTS = 10_000

_SOLVE_FIELDS = ("ceas", "alpha", "budget", "techniques")
_SWEEP_FIELDS = ("ceas", "alpha", "budgets", "techniques")


@dataclass(frozen=True)
class SweepRequest:
    """A validated ``POST /v1/sweep`` body: a (ceas x budget) grid."""

    ceas: Tuple[float, ...]
    budgets: Tuple[float, ...]
    alpha: float
    techniques: Tuple[str, ...]

    @property
    def num_points(self) -> int:
        return len(self.ceas) * len(self.budgets)


def _require_object(payload: Any) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise ValidationError(
            [FieldError("$", "request body must be a JSON object")]
        )
    return payload


def _check_unknown_fields(payload: Dict[str, Any],
                          allowed: Sequence[str],
                          errors: List[FieldError]) -> None:
    for name in payload:
        if name not in allowed:
            errors.append(FieldError(
                name, f"unknown field; allowed fields: {sorted(allowed)}"
            ))


def _positive_number(payload: Dict[str, Any], name: str, default: float,
                     errors: List[FieldError]) -> float:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.append(FieldError(
            name, f"must be a number, got {type(value).__name__}"
        ))
        return default
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        errors.append(FieldError(
            name, f"must be positive and finite, got {value}"
        ))
        return default
    return value


def _technique_specs(payload: Dict[str, Any],
                     errors: List[FieldError]) -> Tuple[str, ...]:
    raw = payload.get("techniques", [])
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list):
        errors.append(FieldError(
            "techniques",
            f"must be a list of LABEL[=VALUE] strings, "
            f"got {type(raw).__name__}",
        ))
        return ()
    specs: List[str] = []
    for index, spec in enumerate(raw):
        if not isinstance(spec, str):
            errors.append(FieldError(
                f"techniques[{index}]",
                f"must be a string, got {type(spec).__name__}",
            ))
            continue
        try:
            parse_technique_spec(spec)
        except ValueError as error:
            errors.append(FieldError(f"techniques[{index}]", str(error)))
            continue
        specs.append(spec)
    return tuple(specs)


def _combined_effect_errors(specs: Tuple[str, ...],
                            errors: List[FieldError]) -> None:
    """Structural conflicts (e.g. two cell densities) are a 400 too."""
    if any(error.field.startswith("techniques") for error in errors):
        return  # per-spec problems already reported
    try:
        ScenarioRequest(techniques=specs).combined_effect()
    except ValueError as error:
        errors.append(FieldError("techniques", str(error)))


def _number_list(payload: Dict[str, Any], name: str,
                 default: Tuple[float, ...],
                 errors: List[FieldError]) -> Tuple[float, ...]:
    raw = payload.get(name)
    if raw is None:
        return default
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        errors.append(FieldError(
            name, "must be a number or a non-empty list of numbers"
        ))
        return default
    values: List[float] = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(FieldError(
                f"{name}[{index}]",
                f"must be a number, got {type(value).__name__}",
            ))
            continue
        value = float(value)
        if not math.isfinite(value) or value <= 0:
            errors.append(FieldError(
                f"{name}[{index}]",
                f"must be positive and finite, got {value}",
            ))
            continue
        values.append(value)
    return tuple(values) if values else default


def validate_solve_request(payload: Any) -> ScenarioRequest:
    """Validate a ``POST /v1/solve`` body into a :class:`ScenarioRequest`.

    Raises :class:`ValidationError` carrying one
    :class:`~repro.service.errors.FieldError` per problem.
    """
    payload = _require_object(payload)
    errors: List[FieldError] = []
    _check_unknown_fields(payload, _SOLVE_FIELDS, errors)
    ceas = _positive_number(payload, "ceas", 32.0, errors)
    alpha = _positive_number(payload, "alpha", 0.5, errors)
    budget = _positive_number(payload, "budget", 1.0, errors)
    techniques = _technique_specs(payload, errors)
    _combined_effect_errors(techniques, errors)
    if errors:
        raise ValidationError(errors)
    return ScenarioRequest(
        ceas=ceas, alpha=alpha, budget=budget, techniques=techniques
    )


def validate_sweep_request(payload: Any) -> SweepRequest:
    """Validate a ``POST /v1/sweep`` body into a :class:`SweepRequest`."""
    payload = _require_object(payload)
    errors: List[FieldError] = []
    _check_unknown_fields(payload, _SWEEP_FIELDS, errors)
    if "ceas" not in payload:
        errors.append(FieldError(
            "ceas", "required: a number or non-empty list of die sizes"
        ))
    ceas = _number_list(payload, "ceas", (32.0,), errors)
    budgets = _number_list(payload, "budgets", (1.0,), errors)
    alpha = _positive_number(payload, "alpha", 0.5, errors)
    techniques = _technique_specs(payload, errors)
    _combined_effect_errors(techniques, errors)
    if len(ceas) * len(budgets) > MAX_SWEEP_POINTS:
        errors.append(FieldError(
            "ceas",
            f"grid too large: {len(ceas)} ceas x {len(budgets)} budgets "
            f"> {MAX_SWEEP_POINTS} points",
        ))
    if errors:
        raise ValidationError(errors)
    return SweepRequest(
        ceas=ceas, budgets=budgets, alpha=alpha, techniques=techniques
    )

"""Request validation: JSON bodies → typed scenario/sweep requests.

Validation is *total*: every field is checked and every problem is
collected, so a 400 response names all offending fields at once with
the same diagnostics the CLI prints (unknown technique labels list the
valid ones, bad parameters name the technique, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..core.scenario import ScenarioRequest, parse_technique_spec
from .errors import FieldError, ValidationError

__all__ = [
    "MAX_SWEEP_POINTS",
    "MAX_JOB_ATTEMPTS",
    "MAX_JOB_CHUNK_SIZE",
    "MAX_OPTIMIZE_EVALUATIONS",
    "MAX_OPTIMIZE_GENERATIONS",
    "MAX_OPTIMIZE_POPULATION",
    "MAX_TRACE_ACCESSES",
    "MAX_TRACE_UNITS",
    "MAX_TRACE_CAPACITIES",
    "MAX_TRACE_WORKING_SET",
    "SweepRequest",
    "JobRequest",
    "OptimizeRequest",
    "TraceRequest",
    "validate_solve_request",
    "validate_sweep_request",
    "validate_job_request",
    "validate_optimize_request",
    "validate_trace_request",
]

#: Upper bound on one sweep's grid (|ceas| x |budgets|).  A request
#: above it is a 400, not a multi-minute stall.
MAX_SWEEP_POINTS = 10_000

#: Bounds on ``POST /v1/jobs`` knobs: retry attempts and chunk size.
MAX_JOB_ATTEMPTS = 10
MAX_JOB_CHUNK_SIZE = 1_000

#: Bounds on ``POST /v1/optimize``: total solves an accepted request
#: may cost (exhaustive valid configurations, or generations x
#: population for evolutionary searches) plus the per-knob caps.
MAX_OPTIMIZE_EVALUATIONS = 20_000
MAX_OPTIMIZE_GENERATIONS = 200
MAX_OPTIMIZE_POPULATION = 256

#: Bounds on ``POST /v1/traces``: total simulated accesses an accepted
#: request may cost (``sharing`` units scale with their core count),
#: plus per-knob caps keeping one job's memory and latency bounded.
MAX_TRACE_ACCESSES = 2_000_000
MAX_TRACE_UNITS = 16
MAX_TRACE_CAPACITIES = 64
MAX_TRACE_WORKING_SET = 1 << 18

_SOLVE_FIELDS = ("ceas", "alpha", "budget", "techniques")
_SWEEP_FIELDS = ("ceas", "alpha", "budgets", "techniques")
_JOB_FIELDS = ("kind", "ids", "ceas", "budgets", "alpha", "techniques",
               "chunk_size", "max_attempts")
_OPTIMIZE_FIELDS = ("ceas", "budget", "alpha", "strategy", "seed",
                    "generations", "population", "space", "chunk_size",
                    "max_attempts")
_TRACE_FIELDS = ("source", "units", "accesses", "working_set_lines",
                 "line_bytes", "seed", "line_counts", "fit_min_lines",
                 "fit_max_lines", "associativity", "max_attempts")


@dataclass(frozen=True)
class SweepRequest:
    """A validated ``POST /v1/sweep`` body: a (ceas x budget) grid."""

    ceas: Tuple[float, ...]
    budgets: Tuple[float, ...]
    alpha: float
    techniques: Tuple[str, ...]

    @property
    def num_points(self) -> int:
        return len(self.ceas) * len(self.budgets)


def _require_object(payload: Any) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise ValidationError(
            [FieldError("$", "request body must be a JSON object")]
        )
    return payload


def _check_unknown_fields(payload: Dict[str, Any],
                          allowed: Sequence[str],
                          errors: List[FieldError]) -> None:
    for name in payload:
        if name not in allowed:
            errors.append(FieldError(
                name, f"unknown field; allowed fields: {sorted(allowed)}"
            ))


def _positive_number(payload: Dict[str, Any], name: str, default: float,
                     errors: List[FieldError]) -> float:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.append(FieldError(
            name, f"must be a number, got {type(value).__name__}"
        ))
        return default
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        errors.append(FieldError(
            name, f"must be positive and finite, got {value}"
        ))
        return default
    return value


def _technique_specs(payload: Dict[str, Any],
                     errors: List[FieldError]) -> Tuple[str, ...]:
    raw = payload.get("techniques", [])
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list):
        errors.append(FieldError(
            "techniques",
            f"must be a list of LABEL[=VALUE] strings, "
            f"got {type(raw).__name__}",
        ))
        return ()
    specs: List[str] = []
    for index, spec in enumerate(raw):
        if not isinstance(spec, str):
            errors.append(FieldError(
                f"techniques[{index}]",
                f"must be a string, got {type(spec).__name__}",
            ))
            continue
        try:
            parse_technique_spec(spec)
        except ValueError as error:
            errors.append(FieldError(f"techniques[{index}]", str(error)))
            continue
        specs.append(spec)
    return tuple(specs)


def _combined_effect_errors(specs: Tuple[str, ...],
                            errors: List[FieldError]) -> None:
    """Structural conflicts (e.g. two cell densities) are a 400 too."""
    if any(error.field.startswith("techniques") for error in errors):
        return  # per-spec problems already reported
    try:
        ScenarioRequest(techniques=specs).combined_effect()
    except ValueError as error:
        errors.append(FieldError("techniques", str(error)))


def _number_list(payload: Dict[str, Any], name: str,
                 default: Tuple[float, ...],
                 errors: List[FieldError]) -> Tuple[float, ...]:
    raw = payload.get(name)
    if raw is None:
        return default
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        errors.append(FieldError(
            name, "must be a number or a non-empty list of numbers"
        ))
        return default
    values: List[float] = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(FieldError(
                f"{name}[{index}]",
                f"must be a number, got {type(value).__name__}",
            ))
            continue
        value = float(value)
        if not math.isfinite(value) or value <= 0:
            errors.append(FieldError(
                f"{name}[{index}]",
                f"must be positive and finite, got {value}",
            ))
            continue
        values.append(value)
    return tuple(values) if values else default


def validate_solve_request(payload: Any) -> ScenarioRequest:
    """Validate a ``POST /v1/solve`` body into a :class:`ScenarioRequest`.

    Raises :class:`ValidationError` carrying one
    :class:`~repro.service.errors.FieldError` per problem.
    """
    payload = _require_object(payload)
    errors: List[FieldError] = []
    _check_unknown_fields(payload, _SOLVE_FIELDS, errors)
    ceas = _positive_number(payload, "ceas", 32.0, errors)
    alpha = _positive_number(payload, "alpha", 0.5, errors)
    budget = _positive_number(payload, "budget", 1.0, errors)
    techniques = _technique_specs(payload, errors)
    _combined_effect_errors(techniques, errors)
    if errors:
        raise ValidationError(errors)
    return ScenarioRequest(
        ceas=ceas, alpha=alpha, budget=budget, techniques=techniques
    )


@dataclass(frozen=True)
class JobRequest:
    """A validated ``POST /v1/jobs`` body: a spec plus retry budget."""

    spec: "JobSpec"
    max_attempts: int


def _bounded_int(payload: Dict[str, Any], name: str, default: int,
                 upper: int, errors: List[FieldError]) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        errors.append(FieldError(
            name, f"must be an integer, got {type(value).__name__}"
        ))
        return default
    if not 1 <= value <= upper:
        errors.append(FieldError(
            name, f"must be between 1 and {upper}, got {value}"
        ))
        return default
    return value


def _experiment_ids_field(payload: Dict[str, Any],
                          errors: List[FieldError]) -> Tuple[str, ...]:
    """Resolve ``ids`` (any accepted spelling) or collect 400s."""
    from ..experiments.runner import experiment_ids, resolve_experiment_id

    raw = payload.get("ids")
    if raw is None:
        return ()
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        errors.append(FieldError(
            "ids", "must be a non-empty list of experiment ids "
                   "(omit for the whole registry)"
        ))
        return ()
    keys: List[str] = []
    for index, value in enumerate(raw):
        if not isinstance(value, str):
            errors.append(FieldError(
                f"ids[{index}]",
                f"must be a string, got {type(value).__name__}",
            ))
            continue
        try:
            keys.append(resolve_experiment_id(value))
        except KeyError:
            errors.append(FieldError(
                f"ids[{index}]",
                f"unknown experiment {value!r}; "
                f"valid ids: {experiment_ids()}",
            ))
    return tuple(keys)


def validate_job_request(payload: Any) -> JobRequest:
    """Validate a ``POST /v1/jobs`` body into a :class:`JobRequest`.

    ``kind`` defaults to ``"experiments"``; an experiments job with no
    ``ids`` runs the whole registry.  Sweep jobs take the same grid
    fields as ``POST /v1/sweep``.
    """
    from ..jobs.spec import (
        DEFAULT_MAX_ATTEMPTS,
        EXPERIMENTS_KIND,
        SWEEP_KIND,
        JobSpec,
    )

    payload = _require_object(payload)
    errors: List[FieldError] = []
    _check_unknown_fields(payload, _JOB_FIELDS, errors)
    kind = payload.get("kind", EXPERIMENTS_KIND)
    if kind == "optimize":
        raise ValidationError([FieldError(
            "kind", "optimize jobs are submitted via POST /v1/optimize"
        )])
    if kind == "trace":
        raise ValidationError([FieldError(
            "kind", "trace jobs are submitted via POST /v1/traces"
        )])
    if kind not in (EXPERIMENTS_KIND, SWEEP_KIND):
        errors.append(FieldError(
            "kind",
            f"must be one of {[EXPERIMENTS_KIND, SWEEP_KIND]}, "
            f"got {kind!r}",
        ))
        kind = EXPERIMENTS_KIND
    # chunk_size 0 (the default) means "the kind's default chunking".
    chunk_size = 0
    if "chunk_size" in payload:
        chunk_size = _bounded_int(payload, "chunk_size", 1,
                                  MAX_JOB_CHUNK_SIZE, errors)
    max_attempts = _bounded_int(payload, "max_attempts",
                                DEFAULT_MAX_ATTEMPTS, MAX_JOB_ATTEMPTS,
                                errors)
    if kind == EXPERIMENTS_KIND:
        for name in ("ceas", "budgets", "alpha"):
            if name in payload:
                errors.append(FieldError(
                    name, "only valid for sweep jobs"
                ))
        ids = _experiment_ids_field(payload, errors)
        if errors:
            raise ValidationError(errors)
        spec = (JobSpec.experiments(ids, chunk_size=chunk_size) if ids
                else JobSpec.experiments(chunk_size=chunk_size))
        return JobRequest(spec=spec, max_attempts=max_attempts)
    if "ids" in payload:
        errors.append(FieldError("ids", "only valid for experiments jobs"))
    if "ceas" not in payload:
        errors.append(FieldError(
            "ceas", "required for sweep jobs: a number or non-empty "
                    "list of die sizes"
        ))
    ceas = _number_list(payload, "ceas", (32.0,), errors)
    budgets = _number_list(payload, "budgets", (1.0,), errors)
    alpha = _positive_number(payload, "alpha", 0.5, errors)
    techniques = _technique_specs(payload, errors)
    _combined_effect_errors(techniques, errors)
    if len(ceas) * len(budgets) > MAX_SWEEP_POINTS:
        errors.append(FieldError(
            "ceas",
            f"grid too large: {len(ceas)} ceas x {len(budgets)} budgets "
            f"> {MAX_SWEEP_POINTS} points",
        ))
    if errors:
        raise ValidationError(errors)
    return JobRequest(
        spec=JobSpec.sweep(ceas=ceas, budgets=budgets, alpha=alpha,
                           techniques=techniques, chunk_size=chunk_size),
        max_attempts=max_attempts,
    )


@dataclass(frozen=True)
class OptimizeRequest:
    """A validated ``POST /v1/optimize`` body: a resolved optimize
    :class:`~repro.jobs.spec.JobSpec` plus retry budget."""

    spec: "JobSpec"
    max_attempts: int

    @property
    def num_evaluations(self) -> int:
        """Solve budget the request admits to (admission-control cost)."""
        from ..optimize import SearchSpace
        from ..optimize.search import EVOLUTIONARY_STRATEGY

        if self.spec.strategy == EVOLUTIONARY_STRATEGY:
            return self.spec.generations * self.spec.population
        return SearchSpace.from_items(self.spec.space).valid_count()


def _space_field(payload: Dict[str, Any],
                 errors: List[FieldError]) -> "Any":
    """Validate ``space`` overrides into a SearchSpace (None = default)."""
    from ..optimize import SearchSpace

    raw = payload.get("space")
    if raw is None:
        return SearchSpace.build()
    if not isinstance(raw, dict):
        errors.append(FieldError(
            "space",
            f"must be an object mapping dimension names to value "
            f"lists, got {type(raw).__name__}",
        ))
        return SearchSpace.build()
    overrides: Dict[str, List[float]] = {}
    for name, values in raw.items():
        if isinstance(values, (int, float)) and not isinstance(values,
                                                               bool):
            values = [values]
        if not isinstance(values, list) or not values or any(
            isinstance(v, bool) or not isinstance(v, (int, float))
            for v in values
        ):
            errors.append(FieldError(
                f"space.{name}",
                "must be a number or a non-empty list of numbers",
            ))
            continue
        overrides[name] = [float(v) for v in values]
    try:
        return SearchSpace.build(overrides)
    except ValueError as error:
        errors.append(FieldError("space", str(error)))
        return SearchSpace.build()


def validate_optimize_request(payload: Any) -> OptimizeRequest:
    """Validate a ``POST /v1/optimize`` body into an optimize job spec.

    ``strategy`` defaults to ``auto`` (exhaustive for small spaces,
    evolutionary above the threshold); the resolved spec stores the
    concrete strategy.  The request's total solve budget — valid
    configurations for exhaustive, ``generations x population`` for
    evolutionary — is capped at :data:`MAX_OPTIMIZE_EVALUATIONS`.
    """
    from ..jobs.spec import DEFAULT_MAX_ATTEMPTS, JobSpec
    from ..optimize.search import (
        AUTO_STRATEGY,
        DEFAULT_GENERATIONS,
        DEFAULT_POPULATION,
        EXHAUSTIVE_STRATEGY,
        STRATEGIES,
        resolve_strategy,
    )

    payload = _require_object(payload)
    errors: List[FieldError] = []
    _check_unknown_fields(payload, _OPTIMIZE_FIELDS, errors)
    if "ceas" not in payload:
        errors.append(FieldError(
            "ceas", "required: the die size (in CEAs) to optimize for"
        ))
    ceas = _positive_number(payload, "ceas", 256.0, errors)
    budget = _positive_number(payload, "budget", 1.0, errors)
    alpha = _positive_number(payload, "alpha", 0.5, errors)
    strategy = payload.get("strategy", AUTO_STRATEGY)
    if strategy not in (AUTO_STRATEGY,) + STRATEGIES:
        errors.append(FieldError(
            "strategy",
            f"must be one of {[AUTO_STRATEGY] + list(STRATEGIES)}, "
            f"got {strategy!r}",
        ))
        strategy = AUTO_STRATEGY
    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        errors.append(FieldError(
            "seed", f"must be an integer, got {type(seed).__name__}"
        ))
        seed = 0
    generations = _bounded_int(payload, "generations",
                               DEFAULT_GENERATIONS,
                               MAX_OPTIMIZE_GENERATIONS, errors)
    population = _bounded_int(payload, "population", DEFAULT_POPULATION,
                              MAX_OPTIMIZE_POPULATION, errors)
    chunk_size = 0
    if "chunk_size" in payload:
        chunk_size = _bounded_int(payload, "chunk_size", 1,
                                  MAX_OPTIMIZE_EVALUATIONS, errors)
    max_attempts = _bounded_int(payload, "max_attempts",
                                DEFAULT_MAX_ATTEMPTS, MAX_JOB_ATTEMPTS,
                                errors)
    space = _space_field(payload, errors)
    resolved = resolve_strategy(strategy, space)
    cost = (space.valid_count() if resolved == EXHAUSTIVE_STRATEGY
            else generations * population)
    if cost > MAX_OPTIMIZE_EVALUATIONS:
        field = ("space" if resolved == EXHAUSTIVE_STRATEGY
                 else "generations")
        errors.append(FieldError(
            field,
            f"search budget too large: {cost} evaluations "
            f"> {MAX_OPTIMIZE_EVALUATIONS}",
        ))
    if errors:
        raise ValidationError(errors)
    return OptimizeRequest(
        spec=JobSpec.optimize(
            ceas=ceas, budget=budget, alpha=alpha, strategy=resolved,
            seed=seed, generations=generations, population=population,
            space=space, chunk_size=chunk_size,
        ),
        max_attempts=max_attempts,
    )


@dataclass(frozen=True)
class TraceRequest:
    """A validated ``POST /v1/traces`` body: a resolved trace
    :class:`~repro.jobs.spec.JobSpec` plus retry budget."""

    spec: "JobSpec"
    max_attempts: int

    @property
    def total_accesses(self) -> int:
        """Simulated accesses the request admits to (admission cost)."""
        from ..traces import TraceParams

        return TraceParams.from_spec(self.spec).total_accesses

    @property
    def source(self) -> str:
        return dict(self.spec.trace)["source"]


def _trace_units_field(payload: Dict[str, Any], source: str,
                       errors: List[FieldError]) -> Any:
    """Validate ``units`` against the source (None = source default)."""
    raw = payload.get("units")
    if raw is None:
        return None
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        raw = [raw]
    if not isinstance(raw, list) or not raw:
        errors.append(FieldError(
            "units", "must be a number or a non-empty list of numbers "
                     "(omit for the source's defaults)"
        ))
        return None
    if len(raw) > MAX_TRACE_UNITS:
        errors.append(FieldError(
            "units", f"too many units: {len(raw)} > {MAX_TRACE_UNITS}"
        ))
        return None
    values: List[Any] = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(FieldError(
                f"units[{index}]",
                f"must be a number, got {type(value).__name__}",
            ))
            continue
        if source == "powerlaw":
            value = float(value)
            if not math.isfinite(value) or not 0 < value <= 4:
                errors.append(FieldError(
                    f"units[{index}]",
                    f"powerlaw units are alphas in (0, 4], got {value}",
                ))
                continue
        else:
            if isinstance(value, float) and not value.is_integer():
                errors.append(FieldError(
                    f"units[{index}]",
                    f"{source} units are positive integers, got {value}",
                ))
                continue
            value = int(value)
            if value < 1:
                errors.append(FieldError(
                    f"units[{index}]",
                    f"{source} units are positive integers, got {value}",
                ))
                continue
        values.append(value)
    return values if values else None


def _trace_line_counts_field(payload: Dict[str, Any],
                             errors: List[FieldError]) -> Any:
    """Validate ``line_counts`` capacities (None = the default ladder)."""
    raw = payload.get("line_counts")
    if raw is None:
        return None
    if not isinstance(raw, list) or not raw:
        errors.append(FieldError(
            "line_counts", "must be a non-empty list of capacities in "
                           "cache lines (omit for the default ladder)"
        ))
        return None
    if len(raw) > MAX_TRACE_CAPACITIES:
        errors.append(FieldError(
            "line_counts",
            f"too many capacities: {len(raw)} > {MAX_TRACE_CAPACITIES}",
        ))
        return None
    values: List[int] = []
    for index, value in enumerate(raw):
        if isinstance(value, bool) or not isinstance(value, int) \
                or not 1 <= value <= MAX_TRACE_WORKING_SET * 4:
            errors.append(FieldError(
                f"line_counts[{index}]",
                f"must be an integer between 1 and "
                f"{MAX_TRACE_WORKING_SET * 4}, got {value!r}",
            ))
            continue
        values.append(value)
    return values if values else None


def validate_trace_request(payload: Any) -> TraceRequest:
    """Validate a ``POST /v1/traces`` body into a trace job spec.

    Only synthetic sources are accepted over HTTP — ``file`` traces
    would make the service read server-side paths.  The request's total
    simulated-access cost (``sharing`` units scale with their core
    count) is capped at :data:`MAX_TRACE_ACCESSES`.
    """
    from ..jobs.spec import DEFAULT_MAX_ATTEMPTS, JobSpec
    from ..traces import TraceParams
    from ..traces.synthesis import SYNTHETIC_SOURCES

    payload = _require_object(payload)
    errors: List[FieldError] = []
    _check_unknown_fields(payload, _TRACE_FIELDS, errors)
    source = payload.get("source")
    if source is None:
        errors.append(FieldError(
            "source",
            f"required: one of {list(SYNTHETIC_SOURCES)}",
        ))
        source = "powerlaw"
    elif source not in SYNTHETIC_SOURCES:
        errors.append(FieldError(
            "source",
            f"must be one of {list(SYNTHETIC_SOURCES)} "
            f"(file traces run via the CLI only), got {source!r}",
        ))
        source = "powerlaw"
    units = _trace_units_field(payload, source, errors)
    accesses = _bounded_int(payload, "accesses", 100_000,
                            MAX_TRACE_ACCESSES, errors)
    working_set_lines = _bounded_int(payload, "working_set_lines",
                                     1 << 14, MAX_TRACE_WORKING_SET,
                                     errors)
    line_bytes = payload.get("line_bytes", 64)
    if isinstance(line_bytes, bool) or not isinstance(line_bytes, int) \
            or line_bytes < 8 or line_bytes > 4096 \
            or line_bytes & (line_bytes - 1):
        errors.append(FieldError(
            "line_bytes",
            f"must be a power of two between 8 and 4096, "
            f"got {line_bytes!r}",
        ))
        line_bytes = 64
    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        errors.append(FieldError(
            "seed", f"must be an integer, got {type(seed).__name__}"
        ))
        seed = 0
    line_counts = _trace_line_counts_field(payload, errors)
    fit_min_lines = 0
    if "fit_min_lines" in payload:
        fit_min_lines = _bounded_int(payload, "fit_min_lines", 1,
                                     MAX_TRACE_WORKING_SET * 4, errors)
    fit_max_lines = 2048
    if "fit_max_lines" in payload:
        fit_max_lines = _bounded_int(payload, "fit_max_lines", 2048,
                                     MAX_TRACE_WORKING_SET * 4, errors)
    associativity = 0
    if "associativity" in payload:
        associativity = _bounded_int(payload, "associativity", 8, 64,
                                     errors)
    max_attempts = _bounded_int(payload, "max_attempts",
                                DEFAULT_MAX_ATTEMPTS, MAX_JOB_ATTEMPTS,
                                errors)
    if errors:
        raise ValidationError(errors)
    try:
        params = TraceParams.create(
            source=source, units=units, accesses=accesses,
            working_set_lines=working_set_lines, line_bytes=line_bytes,
            seed=seed, line_counts=line_counts,
            fit_min_lines=fit_min_lines, fit_max_lines=fit_max_lines,
            associativity=associativity,
        )
    except ValueError as error:
        raise ValidationError([FieldError("$", str(error))])
    if params.total_accesses > MAX_TRACE_ACCESSES:
        raise ValidationError([FieldError(
            "accesses",
            f"simulation too large: {params.total_accesses} total "
            f"accesses > {MAX_TRACE_ACCESSES} (sharing units multiply "
            f"accesses by their core count)",
        )])
    return TraceRequest(
        spec=JobSpec.trace_job(params=params),
        max_attempts=max_attempts,
    )


def validate_sweep_request(payload: Any) -> SweepRequest:
    """Validate a ``POST /v1/sweep`` body into a :class:`SweepRequest`."""
    payload = _require_object(payload)
    errors: List[FieldError] = []
    _check_unknown_fields(payload, _SWEEP_FIELDS, errors)
    if "ceas" not in payload:
        errors.append(FieldError(
            "ceas", "required: a number or non-empty list of die sizes"
        ))
    ceas = _number_list(payload, "ceas", (32.0,), errors)
    budgets = _number_list(payload, "budgets", (1.0,), errors)
    alpha = _positive_number(payload, "alpha", 0.5, errors)
    techniques = _technique_specs(payload, errors)
    _combined_effect_errors(techniques, errors)
    if len(ceas) * len(budgets) > MAX_SWEEP_POINTS:
        errors.append(FieldError(
            "ceas",
            f"grid too large: {len(ceas)} ceas x {len(budgets)} budgets "
            f"> {MAX_SWEEP_POINTS} points",
        ))
    if errors:
        raise ValidationError(errors)
    return SweepRequest(
        ceas=ceas, budgets=budgets, alpha=alpha, techniques=techniques
    )

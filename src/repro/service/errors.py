"""Typed API errors with structured, field-level JSON payloads.

Every error the service returns has the same envelope::

    {"error": {"code": "<machine-readable>", "message": "<human>",
               "detail": {...}}}

Handlers raise :class:`ApiError` subclasses; the HTTP layer renders
them.  ``detail`` carries machine-actionable context: field-level
validation errors, the list of valid experiment ids on a 404, the
allowed methods on a 405.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "ApiError",
    "ValidationError",
    "FieldError",
    "UnsolvableError",
    "NotFoundError",
    "MethodNotAllowedError",
    "PayloadTooLargeError",
    "ConflictError",
    "ServiceDrainingError",
    "TooManyRequestsError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "StoreUnavailableError",
]


class ApiError(Exception):
    """Base class: an HTTP status plus a structured JSON body.

    ``retry_after`` (seconds, optional) is rendered as an HTTP
    ``Retry-After`` header by the transport so shed and breaker-open
    responses tell clients when to come back.
    """

    status = 500
    code = "internal_error"

    def __init__(self, message: str,
                 detail: Optional[Dict[str, Any]] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.message = message
        self.detail = detail or {}
        self.retry_after = retry_after

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.detail:
            body["detail"] = self.detail
        return {"error": body}


class FieldError:
    """One field-level problem inside a :class:`ValidationError`."""

    def __init__(self, field: str, message: str) -> None:
        self.field = field
        self.message = message

    def as_dict(self) -> Dict[str, str]:
        return {"field": self.field, "message": self.message}


class ValidationError(ApiError):
    """400 — the request body failed validation.

    ``errors`` lists every offending field, not just the first, so a
    client can fix a request in one round trip.
    """

    status = 400
    code = "invalid_request"

    def __init__(self, errors: List[FieldError],
                 message: str = "request validation failed") -> None:
        super().__init__(
            message, {"errors": [error.as_dict() for error in errors]}
        )
        self.errors = errors


class UnsolvableError(ApiError):
    """422 — the request is well-formed but the model cannot solve it.

    E.g. a traffic budget below the single-core traffic floor: the
    bisection has no bracket.  Distinct from a 400 because every field
    individually passed validation.
    """

    status = 422
    code = "unsolvable"


class NotFoundError(ApiError):
    """404 — unknown route or unknown experiment id."""

    status = 404
    code = "not_found"


class MethodNotAllowedError(ApiError):
    """405 — the path exists but not for this HTTP method."""

    status = 405
    code = "method_not_allowed"


class PayloadTooLargeError(ApiError):
    """413 — request body exceeds the configured limit."""

    status = 413
    code = "payload_too_large"


class ConflictError(ApiError):
    """409 — the operation conflicts with the resource's current state.

    E.g. cancelling a job that already succeeded or failed: the request
    is well-formed and the resource exists, but the transition is
    impossible.
    """

    status = 409
    code = "conflict"


class ServiceDrainingError(ApiError):
    """503 — the service is draining and no longer accepts new work."""

    status = 503
    code = "draining"


class TooManyRequestsError(ApiError):
    """429 — admission control shed the request; honour ``Retry-After``."""

    status = 429
    code = "saturated"


class DeadlineExceededError(ApiError):
    """504 — the request's ``X-Request-Deadline-Ms`` budget expired.

    The work was cancelled cooperatively at the next check point; the
    client already stopped waiting, so nothing useful was lost.
    """

    status = 504
    code = "deadline_exceeded"


class CircuitOpenError(ApiError):
    """503 — a dependency's circuit breaker is open; failing fast."""

    status = 503
    code = "circuit_open"


class StoreUnavailableError(ApiError):
    """503 — the job store errored and the call could not complete."""

    status = 503
    code = "store_unavailable"

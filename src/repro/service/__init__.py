"""Model-serving subsystem: the bandwidth-wall model over HTTP/JSON.

A stdlib-only, threaded serving layer that turns the one-shot CLI into
a long-running, observable service:

* :mod:`repro.service.app` — routing, request handling, graceful
  shutdown, and the ``bandwidth-wall serve`` entry point;
* :mod:`repro.service.validation` — typed request validation with
  field-level error detail;
* :mod:`repro.service.cache` — TTL+LRU response cache with in-flight
  request coalescing (N concurrent identical solves cost one bisection);
* :mod:`repro.service.metrics` — request counters, latency histograms
  and cache gauges in Prometheus text format;
* :mod:`repro.service.client` — a pure-python client used by the tests,
  the load benchmark and the CI smoke check.

See ``docs/SERVICE.md`` for the endpoint and schema reference.
"""

from .app import ServiceConfig, BandwidthWallService, serve, start_service
from .client import ServiceClient, ServiceError
from .errors import ApiError, NotFoundError, ValidationError

__all__ = [
    "ServiceConfig",
    "BandwidthWallService",
    "serve",
    "start_service",
    "ServiceClient",
    "ServiceError",
    "ApiError",
    "NotFoundError",
    "ValidationError",
]

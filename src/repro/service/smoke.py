"""End-to-end smoke check: boot ``bandwidth-wall serve``, poke it, drain it.

Run as::

    PYTHONPATH=src python -m repro.service.smoke

Boots the real CLI entry point as a subprocess on an ephemeral port,
then asserts the full serving contract:

1. ``/healthz`` answers ok;
2. ``/v1/solve`` for the Eq. 7 base case returns 11 cores, and its
   ``text`` matches the CLI ``solve`` output byte for byte;
3. ``/v1/experiments/fig02`` reproduces Figure 2's checkpoints;
4. a bad request gets a structured 400 and an unknown id a 404;
5. a background job (``POST /v1/jobs``) runs to completion with the
   right artifact, and a second, longer job cancels mid-run;
5b. a small exhaustive design-space search (``POST /v1/optimize``)
    completes and returns a Pareto frontier that dominates the
    technique-free baseline;
6. ``/metrics`` exposes request counters, latency histograms, both
   cache hit-rate families, the ``jobs_*`` families AND the
   ``resilience_*`` families, and ``/healthz`` reports job-queue
   health, worker liveness and the resilience block;
7. a request past its ``X-Request-Deadline-Ms`` budget gets a 504;
8. SIGTERM drains and exits cleanly (code 0).

Run with ``--fault-profile NAME`` (e.g. ``breaker-trip``) the smoke
instead boots the service under that seeded fault-injection profile
and asserts graceful degradation: the jobs API fails fast through the
circuit breaker while solve/healthz/metrics stay up.

Run with ``--processes N`` (N >= 2) the smoke instead exercises the
scale-out path: ``serve --processes N`` behind one port with the
shared cache tier (every child must answer, the tier must aggregate
every child's counters, SIGTERM must drain the whole group), followed
by an N-process worker fleet draining a job backlog byte-identically
to the serial path.

CI runs this on every supported Python; it is the "is the service
actually servable" gate that unit tests cannot give.
"""

from __future__ import annotations

import argparse
import re
import signal
import socket
import subprocess
import sys
import time

from .client import ServiceClient, ServiceError

__all__ = ["main"]


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _check(condition: bool, label: str) -> None:
    if not condition:
        raise AssertionError(f"smoke check failed: {label}")
    print(f"  ok: {label}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fault-profile", default=None,
        help="run the degradation smoke under this seeded fault "
             "profile instead of the standard contract smoke",
    )
    parser.add_argument(
        "--processes", type=int, default=1,
        help="run the scale-out smoke against a pre-fork group of "
             "this many processes instead of the contract smoke",
    )
    args = parser.parse_args(argv)
    if args.fault_profile:
        return fault_main(args.fault_profile)
    if args.processes > 1:
        return scaleout_main(args.processes)
    return contract_main()


def contract_main() -> int:
    port = _free_port()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--workers", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServiceClient("127.0.0.1", port, timeout=30.0)
    try:
        health = client.wait_until_ready(timeout=30.0)
        _check(health["status"] == "ok", "/healthz answers ok")
        _check(health["experiments"] == 28, "registry reports 28 ids")

        solved = client.solve()
        _check(solved["solution"]["cores"] == 11,
               "/v1/solve base case: Eq. 7 supports 11 cores")
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "solve"],
            stdout=subprocess.PIPE, check=True,
        )
        _check(solved["text"].encode("utf-8") == cli.stdout,
               "/v1/solve text is byte-identical to CLI solve")

        fig2 = client.experiment("fig02")
        _check(fig2["experiment_id"] == "fig2",
               "/v1/experiments/fig02 resolves the id")
        result = dict(fig2["result"])
        _check(result.get("supportable_cores_flat") == 11,
               "fig2 flat-envelope crossing is 11 cores")

        try:
            client.solve(alpha=-1)
        except ServiceError as error:
            _check(error.status == 400 and error.field_errors,
                   "bad alpha yields a structured 400")
        else:
            raise AssertionError("bad alpha was accepted")
        try:
            client.experiment("fig99")
        except ServiceError as error:
            _check(error.status == 404
                   and "fig2" in error.detail.get("valid_ids", []),
                   "unknown id yields a 404 listing valid ids")
        else:
            raise AssertionError("unknown experiment id was accepted")

        submitted = client.submit_experiments_job(["fig13",
                                                   "ext-amdahl"])
        _check(submitted["status"] in ("queued", "running"),
               "POST /v1/jobs accepts a background job (202)")
        finished = client.wait_for_job(submitted["id"], timeout=60)
        _check(finished["status"] == "succeeded",
               "background job runs to completion")
        _check(finished["result"]["count"] == 2
               and finished["result"]["experiments"][0]
                   ["experiment_id"] == "fig13",
               "job artifact holds the requested experiments in order")

        # A longer job (fig14 simulates for seconds): cancel it mid-run
        # and watch it stop at a chunk boundary.
        doomed = client.submit_experiments_job(["fig14", "fig1"])
        cancelled = client.cancel_job(doomed["id"])
        _check(cancelled["cancel_requested"]
               or cancelled["status"] == "cancelled",
               "DELETE /v1/jobs/{id} requests cancellation")
        terminal = client.wait_for_job(doomed["id"], timeout=60)
        _check(terminal["status"] == "cancelled",
               "cancelled job reaches the cancelled status")

        # Design-space optimizer: a small exhaustive space through
        # POST /v1/optimize must complete and return a frontier.
        optimize = client.submit_optimize(
            ceas=256.0, budget=2.0,
            space={"dram_density": [1.0, 8.0], "stacked_layers": [0],
                   "line_unused": [0.0], "filter_unused": [0.0],
                   "core_area_fraction": [1.0],
                   "sharing_fraction": [0.0]},
        )
        _check(optimize["kind"] == "optimize"
               and optimize["status"] in ("queued", "running"),
               "POST /v1/optimize accepts a search job (202)")
        frontier_job = client.wait_for_job(optimize["id"], timeout=60)
        _check(frontier_job["status"] == "succeeded",
               "optimize job runs to completion")
        artifact = client.optimize_result(optimize["id"])["result"]
        _check(artifact["strategy"] == "exhaustive"
               and artifact["evaluated"] == 32
               and artifact["frontier_size"] >= 1,
               "optimize artifact holds an exhaustive Pareto frontier")
        best = max(point["cores"] for point in artifact["frontier"])
        neutral = client.solve(ceas=256.0, budget=2.0)
        _check(best >= neutral["solution"]["cores"],
               "frontier dominates the technique-free baseline")

        health = client.healthz()
        _check(health["jobs"]["workers_alive"] >= 1,
               "/healthz reports live job workers")
        _check(health["jobs"]["succeeded"] >= 1
               and health["jobs"]["cancelled"] >= 1,
               "/healthz jobs block tallies outcomes")

        metrics = client.metrics_text()
        for needle in (
            'service_requests_total{route="/v1/solve",method="POST",'
            'status="200"}',
            "service_request_duration_seconds_bucket",
            "service_response_cache_hit_rate",
            "service_response_cache_expirations_total",
            "solve_memo_hit_rate",
            'jobs_submitted_total{kind="experiments"}',
            "jobs_queue_depth",
            "jobs_workers_alive",
            "jobs_succeeded_total",
            "jobs_cancelled_total",
            "jobs_chunk_duration_seconds",
            'optimize_jobs_submitted_total{strategy="exhaustive"}',
            "optimize_evaluations_budgeted_total",
            'resilience_breaker_state{dependency="job-store"} 0',
            "resilience_admission_active",
            "resilience_admission_waiting",
        ):
            _check(needle in metrics, f"metrics expose {needle.split('{')[0]}")
        match = re.search(
            r'service_requests_total\{route="/v1/solve",method="POST",'
            r'status="200"\} (\d+)', metrics)
        _check(match is not None and int(match.group(1)) >= 1,
               "solve request was counted")

        resilience = health.get("resilience", {})
        _check(resilience.get("admission", {}).get("capacity", 0) >= 1,
               "/healthz reports the admission snapshot")
        _check(resilience.get("breakers", [{}])[0].get("state")
               == "closed",
               "/healthz reports the job-store breaker closed")

        impatient = ServiceClient("127.0.0.1", port, timeout=30.0,
                                  deadline_ms=0.001)
        try:
            impatient.sweep(ceas=[16.0, 32.0], budgets=[1.0, 2.0])
        except ServiceError as error:
            _check(error.status == 504
                   and error.code == "deadline_exceeded",
                   "a 1µs deadline on /v1/sweep yields a 504")
        else:
            raise AssertionError("expired deadline was not enforced")
        metrics = client.metrics_text()
        _check('request_deadline_exceeded_total{route="/v1/sweep"}'
               in metrics, "deadline overruns are counted per route")

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30)
        _check(returncode == 0, "SIGTERM shuts down cleanly (exit 0)")
    except Exception:
        if process.poll() is None:
            process.kill()
        output, _ = process.communicate(timeout=10)
        print("--- server output ---")
        print(output or "<empty>")
        raise
    print("service smoke: all checks passed")
    return 0


def fault_main(profile: str) -> int:
    """Degradation smoke: boot under a fault profile, assert the blast
    radius stays contained to the faulted dependency."""
    print(f"service smoke: fault profile {profile!r}")
    port = _free_port()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--workers", "4",
         "--fault-profile", profile],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServiceClient("127.0.0.1", port, timeout=30.0)
    try:
        health = client.wait_until_ready(timeout=30.0)
        _check(health["status"] == "ok",
               "/healthz answers ok despite active faults")
        _check(health.get("resilience", {})
               .get("fault_injection", {}).get("profile") == profile,
               "/healthz names the active fault profile")

        solved = client.solve()
        _check(solved["solution"]["cores"] == 11,
               "/v1/solve is unaffected by store faults")

        # Hammer the store-backed jobs listing until the breaker trips:
        # every response must be a structured 503, first from the store
        # fault itself, then — fail-fast — from the open breaker.
        codes = []
        for _ in range(20):
            try:
                client.jobs()
            except ServiceError as error:
                _check(error.status == 503
                       and error.code in ("store_unavailable",
                                          "circuit_open"),
                       f"jobs API degrades to structured 503 "
                       f"({error.code})")
                codes.append(error.code)
                if error.code == "circuit_open":
                    break
            else:
                raise AssertionError(
                    "store fault profile did not fault the jobs API")
        _check("store_unavailable" in codes and "circuit_open" in codes,
               "breaker trips open after repeated store faults")

        started = time.monotonic()
        try:
            client.jobs()
        except ServiceError as error:
            _check(error.code == "circuit_open",
                   "open breaker keeps failing fast")
        else:
            raise AssertionError("open breaker admitted a request")
        elapsed = time.monotonic() - started
        _check(elapsed < 1.0,
               f"breaker-open rejection is fast ({elapsed * 1000:.0f}ms)")

        metrics = client.metrics_text()
        for needle in (
            'resilience_breaker_state{dependency="job-store"} 2',
            'resilience_breaker_transitions_total'
            '{dependency="job-store",from="closed",to="open"}',
            "resilience_breaker_opened_total 1",
        ):
            _check(needle in metrics,
                   f"metrics expose {needle.split('{')[0]}")
        _check("jobs_queue_depth nan" in metrics,
               "store gauges degrade to NaN, scrape survives")

        health = client.healthz()
        _check(health["resilience"]["breakers"][0]["state"] == "open",
               "/healthz reports the job-store breaker open")
        _check("error" in health["jobs"],
               "/healthz jobs block degrades without failing")

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30)
        _check(returncode == 0,
               "SIGTERM shuts down cleanly under faults (exit 0)")
    except Exception:
        if process.poll() is None:
            process.kill()
        output, _ = process.communicate(timeout=10)
        print("--- server output ---")
        print(output or "<empty>")
        raise
    print(f"service smoke ({profile}): all checks passed")
    return 0


def scaleout_main(processes: int) -> int:
    """Scale-out smoke: pre-fork serving plus a multi-process fleet.

    Boots ``serve --processes N`` with the shared cache tier on an
    ephemeral port and asserts the group contract — one port, N pids
    answering, one tier aggregating every child's counters, a job
    draining through the shared store, clean group drain on SIGTERM —
    then drains a job backlog with an N-process worker fleet and
    checks the artifacts stay byte-identical to the serial path.
    """
    import os
    import shutil
    import tempfile

    print(f"service smoke: scale-out, {processes} processes")
    port = _free_port()
    base = tempfile.mkdtemp(prefix="smoke-scaleout-")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--processes", str(processes),
         "--workers", "4", "--job-workers", "1",
         "--shared-cache-dir", os.path.join(base, "shared"),
         "--state-dir", os.path.join(base, "jobs")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServiceClient("127.0.0.1", port, timeout=30.0)
    try:
        health = client.wait_until_ready(timeout=30.0)
        _check(health["status"] == "ok", "/healthz answers ok")
        _check(health.get("scaleout", {}).get("processes") == processes,
               f"/healthz reports the {processes}-process group")

        # Fan solves out until the tier has counter rows from every
        # child; /healthz answering from N pids is necessary but not
        # sufficient (healthz never touches the tier).
        pids = set()
        seen = 0
        for index in range(300):
            client.solve(alpha=0.26 + (index % 200) * 0.003)
            block = client.healthz()["scaleout"]
            pids.add(block["pid"])
            seen = block["processes_seen"]
            if len(pids) >= processes and seen >= processes:
                break
        _check(len(pids) == processes,
               f"all {processes} children answered requests")
        _check(seen == processes,
               "shared tier holds counter rows from every child")

        metrics = client.metrics_text()
        for needle in (
            "scaleout_shared_cache_total",
            "scaleout_shared_cache_entries",
            f"scaleout_processes_seen {processes}",
        ):
            _check(needle in metrics,
                   f"metrics expose {needle.split('{')[0]}")
        counters = client.healthz()["scaleout"]["counters"]
        _check(counters.get("response.miss", 0) >= processes,
               "cross-process cache counters aggregate")

        submitted = client.submit_experiments_job(["fig13"])
        finished = client.wait_for_job(submitted["id"], timeout=60)
        _check(finished["status"] == "succeeded",
               "a background job drains through the shared store")

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60)
        _check(returncode == 0,
               "SIGTERM drains the whole group (exit 0)")
        output, _ = process.communicate(timeout=10)
        _check(output.count("accepting via") == processes,
               "every child reported its accept loop live")
    except Exception:
        if process.poll() is None:
            process.kill()
            output, _ = process.communicate(timeout=10)
            print("--- server output ---")
            print(output or "<empty>")
        raise
    finally:
        shutil.rmtree(base, ignore_errors=True)

    # Part two: N forked claimers race over one lease-based store.
    from ..jobs.executor import (
        chunk_count,
        encode_artifact,
        serial_artifact,
    )
    from ..jobs.spec import JobSpec
    from ..jobs.store import SUCCEEDED, JobStore

    fleet_dir = tempfile.mkdtemp(prefix="smoke-fleet-")
    try:
        spec = JobSpec.sweep(ceas=(16.0, 32.0, 64.0),
                             budgets=(1.0, 2.0), alpha=0.5,
                             chunk_size=2)
        store = JobStore(fleet_dir)
        job_ids = []
        for index in range(2 * processes):
            record = store.submit(spec, chunks_total=chunk_count(spec),
                                  job_id=f"smoke-{index}")
            job_ids.append(record.id)
        result = subprocess.run(
            [sys.executable, "-m", "repro.jobs.worker",
             "--state-dir", fleet_dir, "--processes", str(processes),
             "--once", "--poll-interval", "0.05"],
            capture_output=True, text=True, timeout=300,
        )
        _check(result.returncode == 0,
               "worker fleet drains the backlog and exits 0")
        records = [store.get(job_id) for job_id in job_ids]
        _check(all(record.status == SUCCEEDED for record in records),
               "every backlog job succeeded")
        serial = encode_artifact(serial_artifact(spec))
        _check(all(record.result_text == serial for record in records),
               "fleet artifacts are byte-identical to the serial path")
        store.close()
    finally:
        shutil.rmtree(fleet_dir, ignore_errors=True)
    print(f"service smoke (scale-out x{processes}): all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

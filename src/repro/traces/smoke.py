"""End-to-end smoke check: synthesise a trace, fit it, solve with it.

Run as::

    PYTHONPATH=src python -m repro.traces.smoke

Exercises the whole trace-to-solver loop on seeded inputs, in-process:

1. a ``powerlaw`` trace generated at the paper's commercial-average
   alpha (0.48) runs through the pipeline, and the fitted alpha lands
   within the ISSUE-9 acceptance tolerance (0.02) of the generator's;
2. the run is deterministic: a second pass produces byte-identical
   artifact JSON, and the chunked jobs path assembles to the same
   bytes as the serial path;
3. a ``sharing`` trace pair shows the Figure-14 direction — the fitted
   compulsory term declines as cores grow;
4. the calibrated :class:`~repro.core.powerlaw.PowerLawMissModel`
   feeds the bandwidth-wall solver and yields a positive,
   budget-respecting core count — trace → fit → solve, closed.

CI runs this as the trace subsystem's "is the pipeline actually
usable" gate; the unit suite covers the pieces, this covers the loop.
"""

from __future__ import annotations

import json
import sys

#: Generating alpha and the acceptance bound on the fitted one.
GENERATING_ALPHA = 0.48
ALPHA_TOLERANCE = 0.02


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"trace smoke FAILED: {message}")
    print(f"ok: {message}")


def main() -> int:
    from ..core.area import ChipDesign
    from ..core.powerlaw import PowerLawMissModel
    from ..core.scaling import BandwidthWallModel
    from ..jobs.executor import encode_artifact, execute_chunk, \
        serial_artifact
    from ..jobs.spec import JobSpec
    from .pipeline import TraceParams, assemble_trace_artifact, run_trace

    # 1. fit accuracy on a seeded synthetic trace
    params = TraceParams.create(source="powerlaw",
                                units=[GENERATING_ALPHA],
                                accesses=60_000)
    artifact = run_trace(params)
    fit = artifact["units"][0]["yavits_fit"]
    check(abs(fit["alpha"] - GENERATING_ALPHA) <= ALPHA_TOLERANCE,
          f"fitted alpha {fit['alpha']:.4f} within {ALPHA_TOLERANCE} "
          f"of generating {GENERATING_ALPHA}")
    check(fit["r_squared"] > 0.99,
          f"extended fit explains the curve (R^2={fit['r_squared']:.4f})")

    # 2. determinism: serial rerun and the chunked jobs path agree
    check(json.dumps(run_trace(params)) == json.dumps(artifact),
          "serial rerun is byte-identical")
    spec = JobSpec.trace_job(params=params)
    chunked = assemble_trace_artifact(params, [execute_chunk(spec, 0)])
    check(encode_artifact(chunked)
          == encode_artifact(serial_artifact(spec)),
          "chunked jobs path assembles to serial bytes")

    # 3. the sharing mix shows Figure 14's direction
    sharing = run_trace(TraceParams.create(
        source="sharing", units=[4, 16], accesses=8000,
        working_set_lines=2048,
        line_counts=[2**k for k in range(4, 17)], fit_max_lines=0,
    ))
    floors = [unit["yavits_fit"]["compulsory"]
              for unit in sharing["units"]]
    check(floors[0] > floors[1] > 0,
          f"compulsory term declines with cores "
          f"({floors[0]:.4f} @ 4 -> {floors[1]:.4f} @ 16)")

    # 4. trace -> fit -> solve: the calibrated alpha drives the solver
    calibrated = artifact["units"][0]["model"]
    miss_model = PowerLawMissModel(
        alpha=calibrated["alpha"],
        baseline_miss_rate=calibrated["baseline_miss_rate"],
        baseline_cache_size=float(
            calibrated["baseline_cache_size_bytes"]),
    )
    check(0 < miss_model.miss_rate(miss_model.baseline_cache_size * 4)
          < miss_model.baseline_miss_rate,
          "calibrated miss model declines with capacity")
    solver = BandwidthWallModel(ChipDesign(16, 8),
                                alpha=calibrated["alpha"])
    solution = solver.supportable_cores(256.0, traffic_budget=1.0)
    check(solution.cores >= 1,
          f"fitted alpha solves to {solution.cores} cores at 256 CEAs")
    check(solver.relative_traffic(256.0, float(solution.cores))
          <= 1.0 + 1e-9,
          "solution respects the traffic budget")

    print("trace smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

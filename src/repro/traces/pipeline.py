"""The trace pipeline's chunk protocol: simulate → fit → calibrate.

:class:`TraceParams` is the resolved, canonical description of one
trace job.  A job is a list of *units* — one complete simulation each
(a generating alpha, a core count, a stride, or a trace file) — and one
unit is one chunk: the durable-jobs executor checkpoints after every
simulation, and a crash loses at most one unit's work.

Everything is a pure function of the params (seeded generators, no
wall clock), so :func:`run_trace` — execute every chunk, assemble — is
byte-identical to the chunked jobs path by construction, the same
contract :mod:`repro.optimize.search` established.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple, Union

from .fitting import calibrated_model, fit_yavits
from .simulate import cross_check_curve, curve_max_delta, simulate_trace
from .synthesis import TRACE_SOURCES, trace_source_streams

__all__ = [
    "DEFAULT_TRACE_ACCESSES",
    "DEFAULT_LINE_COUNTS",
    "DEFAULT_UNITS",
    "TraceParams",
    "trace_chunk_count",
    "execute_trace_chunk",
    "assemble_trace_artifact",
    "run_trace",
]

#: Measured accesses per unit (per core for ``sharing`` sources).
DEFAULT_TRACE_ACCESSES = 100_000

#: Capacities evaluated, in 64B lines (1 KB ... 512 KB with the
#: default line size — the power-law regime of the default footprint).
DEFAULT_LINE_COUNTS: Tuple[int, ...] = tuple(2**k for k in range(4, 14))

#: Default unit list per source: paper-anchored alphas for ``powerlaw``
#: (OLTP-2, commercial average, OLTP-4), Figure 14's core counts for
#: ``sharing``.
DEFAULT_UNITS: Dict[str, Tuple[Union[int, float], ...]] = {
    "powerlaw": (0.36, 0.48, 0.62),
    "sequential": (1,),
    "strided": (4,),
    "sharing": (4, 8, 16),
}

Unit = Union[int, float, str]

#: Keys of :meth:`TraceParams.to_items`, in item (sorted) order.
_ITEM_FIELDS = (
    "accesses", "associativity", "fit_max_lines", "fit_min_lines",
    "line_bytes", "line_counts", "seed", "source", "units",
    "working_set_lines",
)


@dataclass(frozen=True)
class TraceParams:
    """The resolved, canonical inputs of one trace-simulation run."""

    source: str
    units: Tuple[Unit, ...]
    accesses: int = DEFAULT_TRACE_ACCESSES
    working_set_lines: int = 1 << 14
    line_bytes: int = 64
    seed: int = 0
    line_counts: Tuple[int, ...] = DEFAULT_LINE_COUNTS
    #: Fit range bounds in lines; 0 means unbounded on that side.
    fit_min_lines: int = 0
    fit_max_lines: int = 2048
    #: Ways for the set-associative cross-check; 0 skips it.
    associativity: int = 0

    def __post_init__(self) -> None:
        if self.source not in TRACE_SOURCES:
            raise ValueError(
                f"unknown trace source {self.source!r}; choose from "
                f"{list(TRACE_SOURCES)}"
            )
        if not self.units:
            raise ValueError("need at least one simulation unit")
        for unit in self.units:
            self._check_unit(unit)
        if self.accesses < 1:
            raise ValueError(
                f"accesses must be positive, got {self.accesses}"
            )
        if self.working_set_lines < 2:
            raise ValueError(
                f"working_set_lines must be >= 2, "
                f"got {self.working_set_lines}"
            )
        if self.line_bytes < 8 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(
                f"line_bytes must be a power of two >= 8, "
                f"got {self.line_bytes}"
            )
        if not self.line_counts:
            raise ValueError("need at least one cache capacity")
        if any(count < 1 for count in self.line_counts):
            raise ValueError("cache capacities must be >= 1 line")
        if list(self.line_counts) != sorted(set(self.line_counts)):
            raise ValueError(
                "line_counts must be strictly ascending "
                "(use TraceParams.create to canonicalise)"
            )
        if self.fit_min_lines < 0 or self.fit_max_lines < 0:
            raise ValueError("fit bounds must be non-negative")
        if self.associativity < 0:
            raise ValueError(
                f"associativity must be >= 0, got {self.associativity}"
            )

    def _check_unit(self, unit: Unit) -> None:
        if self.source == "powerlaw":
            if not isinstance(unit, float) or not 0 < unit <= 4:
                raise ValueError(
                    f"powerlaw units are alphas in (0, 4], got {unit!r}"
                )
        elif self.source in ("sequential", "strided", "sharing"):
            if not isinstance(unit, int) or isinstance(unit, bool) \
                    or unit < 1:
                raise ValueError(
                    f"{self.source} units are positive integers, "
                    f"got {unit!r}"
                )
        elif not isinstance(unit, str) or not unit:
            raise ValueError(
                f"file units are non-empty paths, got {unit!r}"
            )

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, *, source: str,
               units: Any = None,
               accesses: int = DEFAULT_TRACE_ACCESSES,
               working_set_lines: int = 1 << 14,
               line_bytes: int = 64,
               seed: int = 0,
               line_counts: Any = None,
               fit_min_lines: int = 0,
               fit_max_lines: int = 2048,
               associativity: int = 0) -> "TraceParams":
        """Canonicalising constructor (the classmethods' entry point).

        Units coerce to the source's natural type; capacities sort and
        deduplicate — so two spellings of the same run produce equal
        params, equal chunk plans and equal artifact bytes.
        """
        if units is None:
            units = DEFAULT_UNITS.get(source, ())
        if source == "powerlaw":
            units = tuple(float(u) for u in units)
        elif source in ("sequential", "strided", "sharing"):
            units = tuple(int(u) for u in units)
        else:
            units = tuple(str(u) for u in units)
        counts = (DEFAULT_LINE_COUNTS if line_counts is None
                  else tuple(sorted(set(int(c) for c in line_counts))))
        return cls(
            source=source,
            units=units,
            accesses=int(accesses),
            working_set_lines=int(working_set_lines),
            line_bytes=int(line_bytes),
            seed=int(seed),
            line_counts=counts,
            fit_min_lines=int(fit_min_lines),
            fit_max_lines=int(fit_max_lines),
            associativity=int(associativity),
        )

    @classmethod
    def from_spec(cls, spec: Any) -> "TraceParams":
        """Adapt a ``trace`` :class:`~repro.jobs.spec.JobSpec`."""
        return cls.from_items(spec.trace)

    @classmethod
    def from_items(cls, items: Any) -> "TraceParams":
        """Inverse of :meth:`to_items` (tolerates JSON's list-for-tuple)."""
        payload = dict(items)
        missing = [key for key in _ITEM_FIELDS if key not in payload]
        if missing:
            raise ValueError(f"trace params missing fields: {missing}")
        return cls(
            source=str(payload["source"]),
            units=tuple(payload["units"]),
            accesses=int(payload["accesses"]),
            working_set_lines=int(payload["working_set_lines"]),
            line_bytes=int(payload["line_bytes"]),
            seed=int(payload["seed"]),
            line_counts=tuple(int(c) for c in payload["line_counts"]),
            fit_min_lines=int(payload["fit_min_lines"]),
            fit_max_lines=int(payload["fit_max_lines"]),
            associativity=int(payload["associativity"]),
        )

    def to_items(self) -> Tuple[Tuple[str, Any], ...]:
        """Hashable, sorted key/value form for :class:`JobSpec` storage."""
        return (
            ("accesses", self.accesses),
            ("associativity", self.associativity),
            ("fit_max_lines", self.fit_max_lines),
            ("fit_min_lines", self.fit_min_lines),
            ("line_bytes", self.line_bytes),
            ("line_counts", self.line_counts),
            ("seed", self.seed),
            ("source", self.source),
            ("units", self.units),
            ("working_set_lines", self.working_set_lines),
        )

    # -- planning ------------------------------------------------------

    def chunk_count(self) -> int:
        return len(self.units)

    def reference_line_count(self) -> int:
        """Capacity anchoring the calibrated model (curve midpoint)."""
        return self.line_counts[len(self.line_counts) // 2]

    @property
    def total_accesses(self) -> int:
        """Admission-control cost: accesses simulated across all units
        (``sharing`` units scale with their core count)."""
        if self.source == "sharing":
            return sum(self.accesses * int(unit) for unit in self.units)
        return self.accesses * len(self.units)


# ----------------------------------------------------------------------
# Chunk protocol (used by repro.jobs.executor)
# ----------------------------------------------------------------------


def trace_chunk_count(params: TraceParams) -> int:
    return params.chunk_count()


def _fit_bounds(params: TraceParams) -> Dict[str, Any]:
    return {
        "min_lines": params.fit_min_lines or None,
        "max_lines": params.fit_max_lines or None,
    }


def execute_trace_chunk(params: TraceParams,
                        index: int) -> Dict[str, Any]:
    """Simulate one unit end to end; returns its JSON-ready payload.

    Degenerate curves (a scan's step function, a flat curve) record the
    fit *error message* instead of failing the chunk — a trace job over
    a power-law violator should report the violation, not crash.
    """
    count = params.chunk_count()
    if not 0 <= index < count:
        raise IndexError(
            f"chunk index {index} out of range for {count} chunks"
        )
    unit = params.units[index]
    streams = trace_source_streams(
        params.source, unit,
        accesses=params.accesses,
        working_set_lines=params.working_set_lines,
        line_bytes=params.line_bytes,
        seed=params.seed,
    )
    simulation = simulate_trace(
        streams.stream, params.line_counts,
        line_bytes=params.line_bytes,
        warmup=streams.warmup,
        exclude_cold=streams.exclude_cold,
    )
    bounds = _fit_bounds(params)

    from ..analysis.fitting import fit_miss_curve

    payload: Dict[str, Any] = {
        "unit": streams.label,
        "unit_value": unit,
        "accesses": simulation.accesses,
        "cold_misses": simulation.cold_misses,
        "distinct_lines": simulation.distinct_lines,
        "exclude_cold": simulation.exclude_cold,
        "curve": {
            "line_counts": list(simulation.curve.line_counts),
            "miss_rates": list(simulation.curve.miss_rates),
        },
    }
    try:
        power = fit_miss_curve(simulation.curve, **bounds)
        payload["power_fit"] = {
            "alpha": power.alpha,
            "coefficient": power.coefficient,
            "r_squared": power.r_squared,
            "points": power.points,
        }
    except ValueError as error:
        payload["power_fit"] = {"error": str(error)}
    try:
        yavits = fit_yavits(simulation.curve, **bounds)
        payload["yavits_fit"] = {
            "alpha": yavits.alpha,
            "coefficient": yavits.coefficient,
            "compulsory": yavits.compulsory,
            "r_squared": yavits.r_squared,
            "max_abs_residual": yavits.max_abs_residual,
            "residuals": list(yavits.residuals),
            "points": yavits.points,
        }
        try:
            model = calibrated_model(
                yavits,
                reference_lines=params.reference_line_count(),
                line_bytes=params.line_bytes,
            )
            payload["model"] = {
                "alpha": model.alpha,
                "baseline_miss_rate": model.baseline_miss_rate,
                "baseline_cache_size_bytes": model.baseline_cache_size,
            }
        except ValueError as error:
            payload["model"] = {"error": str(error)}
    except ValueError as error:
        payload["yavits_fit"] = {"error": str(error)}
        payload["model"] = {"error": "no extended fit to calibrate from"}

    if params.associativity > 0:
        def replay():
            return trace_source_streams(
                params.source, unit,
                accesses=params.accesses,
                working_set_lines=params.working_set_lines,
                line_bytes=params.line_bytes,
                seed=params.seed,
            ).stream

        checked = cross_check_curve(
            replay, params.line_counts,
            line_bytes=params.line_bytes,
            associativity=params.associativity,
        )
        payload["cross_check"] = {
            "associativity": params.associativity,
            "max_delta": curve_max_delta(simulation.raw_curve, checked),
            "miss_rates": list(checked.miss_rates),
        }
    return payload


def assemble_trace_artifact(
    params: TraceParams,
    payloads: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold per-unit payloads into the final trace artifact."""
    fitted = [payload["yavits_fit"].get("alpha")
              for payload in payloads]
    present = [alpha for alpha in fitted if alpha is not None]
    compulsory = [payload["yavits_fit"].get("compulsory")
                  for payload in payloads]
    floors = [value for value in compulsory if value is not None]
    artifact: Dict[str, Any] = {
        "kind": "trace",
        "source": params.source,
        "request": {
            "source": params.source,
            "units": list(params.units),
            "accesses": params.accesses,
            "working_set_lines": params.working_set_lines,
            "line_bytes": params.line_bytes,
            "seed": params.seed,
            "line_counts": list(params.line_counts),
            "fit_min_lines": params.fit_min_lines,
            "fit_max_lines": params.fit_max_lines,
            "associativity": params.associativity,
        },
        "count": len(payloads),
        "fitted_alphas": fitted,
        "units": list(payloads),
    }
    if present:
        artifact["alpha_range"] = {
            "min": min(present), "max": max(present),
        }
    if floors:
        artifact["compulsory_range"] = {
            "min": min(floors), "max": max(floors),
        }
    return artifact


def run_trace(params: TraceParams) -> Dict[str, Any]:
    """Run a whole trace job in-process (CLI and benchmark entry point).

    Identical to executing every chunk and assembling — literally, so
    the serial path and the jobs path are byte-identical by
    construction.
    """
    payloads = [execute_trace_chunk(params, index)
                for index in range(params.chunk_count())]
    return assemble_trace_artifact(params, payloads)

"""Deterministic trace sources for the simulation pipeline.

Every source maps a *unit* (one simulation's worth of work — a target
alpha, a core count, a stride, a file path) to the streams the
simulator consumes.  All synthetic sources are seeded and pure, so a
chunk re-executed after a crash regenerates byte-identical accesses.

Sources
-------
``powerlaw``
    :class:`~repro.workloads.stack_distance.PowerLawTraceGenerator`
    with a chosen tail index.  Ships a warmup sweep and excludes cold
    misses so the measured curve is *stationary* — the setup under
    which the fitted alpha converges to the generating alpha.
``sequential`` / ``strided``
    A cyclic scan over the working set (stride 1, or a chosen stride).
    Every re-reference has stack distance equal to the footprint, so
    the miss curve is a step: the classic power-law *violator*, kept as
    a fitting stress case.
``sharing``
    A multi-thread shared-footprint mix: every thread draws power-law
    reuse from one constant shared region plus its own private region
    (both un-prefilled, so first touches surface as compulsory misses).
    The capacity component stays a power law by construction while the
    footprint — and hence the compulsory term — grows with the thread
    count, which is the Figure-14 structure the Yavits fit
    (:mod:`repro.traces.fitting`) is built to measure.
``file``
    A ``workloads.trace_io`` trace from disk (gzip transparent).
"""

from __future__ import annotations

import random
from typing import Iterator, NamedTuple, Optional, Union

from ..workloads.address_stream import MemoryAccess
from ..workloads.stack_distance import PowerLawTraceGenerator
from ..workloads.trace_io import read_trace

__all__ = [
    "TRACE_SOURCES",
    "SYNTHETIC_SOURCES",
    "TraceStreams",
    "trace_source_streams",
]

#: All recognised trace sources, in documentation order.
TRACE_SOURCES = ("powerlaw", "sequential", "strided", "sharing", "file")

#: Sources that are generated (seeded, pure) rather than read from
#: disk — the only ones the service accepts over ``POST /v1/traces``.
SYNTHETIC_SOURCES = ("powerlaw", "sequential", "strided", "sharing")


class TraceStreams(NamedTuple):
    """One unit's simulator input: streams plus measurement policy."""

    #: Recorded-then-discarded prefix (warm stack), or ``None``.
    warmup: Optional[Iterator[MemoryAccess]]
    #: The measured access stream.
    stream: Iterator[MemoryAccess]
    #: Drop compulsory misses from the curve (stationary measurement)?
    exclude_cold: bool
    #: Human-readable unit label for payloads and reports.
    label: str


#: Tail index of the sharing mix's reuse streams — the paper's
#: commercial-workload average (Section 4.1).
_SHARING_ALPHA = 0.48

#: Fraction of accesses that hit the shared region; matches
#: ``parsec_like.ParsecLikeWorkload.shared_access_fraction``.
_SHARED_FRACTION = 0.40

#: Line-address gap between per-thread private regions — the same
#: isolation stride ``parsec_like`` uses, far beyond any footprint.
_PRIVATE_REGION_STRIDE = 1 << 22


def _sharing_stream(
    cores: int,
    accesses_per_core: int,
    working_set_lines: int,
    line_bytes: int,
    seed: int,
) -> Iterator[MemoryAccess]:
    """Round-robin threads over one shared and ``cores`` private mixes.

    Every stream is an un-prefilled :class:`PowerLawTraceGenerator`:
    reuse distances follow the Pareto law (power-law capacity misses)
    while first touches surface as compulsory misses.  The shared
    region's size is constant, each thread adds a private region, so
    the per-access compulsory rate *declines* as cores grow — the
    trace-level mirror of Figure 14's declining shared-line fraction.
    """
    total = accesses_per_core * cores
    private_lines = max(2, (working_set_lines * 5) // 8)
    shared_iter = PowerLawTraceGenerator(
        alpha=_SHARING_ALPHA,
        working_set_lines=working_set_lines,
        line_bytes=line_bytes,
        seed=seed * 1_000_003 + 1,
        prefill=False,
    ).accesses(total)
    private_iters = [
        PowerLawTraceGenerator(
            alpha=_SHARING_ALPHA,
            working_set_lines=private_lines,
            line_bytes=line_bytes,
            seed=seed * 1_000_003 + 2 + thread,
            address_base=(thread + 1) * _PRIVATE_REGION_STRIDE * line_bytes,
            prefill=False,
        ).accesses(total)
        for thread in range(cores)
    ]
    selector = random.Random(seed ^ 0xCA5E)
    for index in range(total):
        thread = index % cores
        if selector.random() < _SHARED_FRACTION:
            access = next(shared_iter)
        else:
            access = next(private_iters[thread])
        yield MemoryAccess(access.address, access.is_write, thread)


def _scan_stream(
    accesses: int,
    working_set_lines: int,
    line_bytes: int,
    stride: int,
) -> Iterator[MemoryAccess]:
    """Cyclic strided scan: line ``(i * stride) % working_set_lines``."""
    for i in range(accesses):
        line = (i * stride) % working_set_lines
        yield MemoryAccess(line * line_bytes, False, 0)


def trace_source_streams(
    source: str,
    unit: Union[int, float, str],
    *,
    accesses: int,
    working_set_lines: int,
    line_bytes: int,
    seed: int = 0,
) -> TraceStreams:
    """Build one unit's streams.

    ``unit`` is source-specific: the generating alpha (``powerlaw``),
    the core count (``sharing``), the stride (``sequential`` /
    ``strided``) or the file path (``file``).  For ``sharing``,
    ``accesses`` is per core — total work scales with the thread count,
    matching the paper's Figure 14 problem-scaling assumption.
    """
    if source == "powerlaw":
        generator = PowerLawTraceGenerator(
            alpha=float(unit),
            working_set_lines=working_set_lines,
            line_bytes=line_bytes,
            seed=seed,
        )
        return TraceStreams(
            warmup=generator.warmup_accesses(),
            stream=generator.accesses(accesses),
            exclude_cold=True,
            label=f"alpha={float(unit):g}",
        )
    if source in ("sequential", "strided"):
        step = 1 if source == "sequential" else int(unit)
        return TraceStreams(
            warmup=None,
            stream=_scan_stream(accesses, working_set_lines, line_bytes,
                                step),
            exclude_cold=True,
            label=f"stride={step}",
        )
    if source == "sharing":
        cores = int(unit)
        return TraceStreams(
            warmup=None,
            stream=_sharing_stream(cores, accesses, working_set_lines,
                                   line_bytes, seed),
            exclude_cold=False,
            label=f"cores={cores}",
        )
    if source == "file":
        path = str(unit)
        return TraceStreams(
            warmup=None,
            stream=read_trace(path),
            exclude_cold=False,
            label=f"file={path}",
        )
    raise ValueError(
        f"unknown trace source {source!r}; choose from {list(TRACE_SOURCES)}"
    )

"""Trace-driven cache simulation: ground the power law in data.

The analytical model rests on one empirical claim — miss rates follow
``m(C) = m0 * (C/C0)^-alpha`` (paper Section 4.1).  This package closes
the loop the paper closed with real traces: generate (or load) an
access trace, simulate fixed-capacity LRU and set-associative caches
over it, fit alpha *and* a Yavits-style compulsory-miss term to the
simulated curve, and hand back a calibrated
:class:`~repro.core.powerlaw.PowerLawMissModel` ready for the solver.

Layout
------
:mod:`.synthesis`
    Deterministic trace sources: seeded power-law reuse, sequential and
    strided scans, multi-thread shared-footprint mixes, and
    ``workloads.trace_io`` files.
:mod:`.simulate`
    One-pass O(log n) stack-distance simulation producing the entire
    miss-rate-vs-capacity curve, plus a set-associative cross-check.
:mod:`.fitting`
    The Yavits extension ``m(C) = c * C^-alpha + m_c`` (arXiv
    1602.01329): data sharing and footprint growth add a compulsory
    component the pure power law misses.
:mod:`.pipeline`
    :class:`TraceParams` and the chunk protocol
    (``execute_trace_chunk`` / ``assemble_trace_artifact`` /
    ``run_trace``) the durable-jobs executor delegates to — one
    simulation unit per chunk, crash-resume byte-identical.

Entry points: ``bandwidth-wall traces`` (CLI), ``POST /v1/traces``
(service), and the ``ext-trace-lru`` / ``ext-trace-sharing``
experiments.  See ``docs/TRACES.md``.
"""

from .fitting import YavitsFit, calibrated_model, fit_yavits
from .pipeline import (
    TraceParams,
    assemble_trace_artifact,
    execute_trace_chunk,
    run_trace,
    trace_chunk_count,
)
from .simulate import TraceSimulation, cross_check_curve, simulate_trace
from .synthesis import TRACE_SOURCES, trace_source_streams

__all__ = [
    "TRACE_SOURCES",
    "TraceParams",
    "TraceSimulation",
    "YavitsFit",
    "assemble_trace_artifact",
    "calibrated_model",
    "cross_check_curve",
    "execute_trace_chunk",
    "fit_yavits",
    "run_trace",
    "simulate_trace",
    "trace_chunk_count",
    "trace_source_streams",
]

"""Yavits-style miss-curve fitting: power law plus a compulsory term.

The paper's model is ``m(C) = c * C^-alpha``.  Yavits et al. ("Effect
of Data Sharing on Private Cache Design in Chip Multiprocessors",
arXiv 1602.01329) observe that real traces — especially multithreaded
ones whose footprint grows with the thread count — carry a
capacity-independent *compulsory* component the pure power law cannot
express, and extend the model to::

    m(C) = c * C^-alpha + m_c

This module fits that form.  The inner (c, alpha) fit for a fixed
``m_c`` is the existing log-log OLS (:func:`repro.analysis.fitting
.fit_power_law` on the floored-out rates); the outer search over
``m_c`` minimises the linear-space sum of squared residuals on a
deterministic refined grid, so identical curves always produce
identical fits — the property the golden harness and byte-identical
job artifacts rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..analysis.fitting import fit_power_law
from ..core.powerlaw import PowerLawMissModel
from ..workloads.stack_distance import MissCurve

__all__ = ["YavitsFit", "fit_yavits", "calibrated_model"]

#: Outer-search resolution: candidates per grid pass, and how many
#: times the grid zooms in around the incumbent best.
_GRID_STEPS = 48
_GRID_REFINEMENTS = 3

#: The compulsory term may approach but never reach the smallest
#: measured rate (the floored-out rates must stay loggable).
_FLOOR_MARGIN = 1e-9

#: Points whose floored-out rate falls below this fraction of the
#: largest floored-out rate sit in the floor's noise band: their huge
#: negative logs would hijack the inner OLS and push every candidate
#: floor's capacity fit off the cliff.  They are excluded from the
#: *inner* fit but still scored by the outer SSE.
_RELATIVE_FLOOR = 1e-3


@dataclass(frozen=True)
class YavitsFit:
    """Result of fitting ``m(C) = c * C^-alpha + m_c`` to a curve."""

    alpha: float
    coefficient: float
    compulsory: float
    r_squared: float
    #: Per-point ``measured - predicted`` miss-rate residuals, in the
    #: fitted range's capacity order.
    residuals: Tuple[float, ...]
    points: int

    def predict(self, lines: float) -> float:
        """Miss rate the fit predicts at ``lines`` cache lines."""
        if lines <= 0:
            raise ValueError(f"lines must be positive, got {lines}")
        return self.coefficient * lines ** (-self.alpha) + self.compulsory

    @property
    def conforms(self) -> bool:
        """Pragmatic 'the extended law explains the curve' verdict."""
        return self.r_squared >= 0.95

    @property
    def max_abs_residual(self) -> float:
        return max(abs(r) for r in self.residuals)


def _fit_at_floor(
    sizes: Sequence[int],
    rates: Sequence[float],
    compulsory: float,
) -> Optional[Tuple[float, float, float]]:
    """``(alpha, coefficient, sse)`` for one candidate floor, or None.

    ``sse`` is the linear-space sum of squared residuals against the
    *original* rates — comparable across candidate floors, unlike the
    log-space loss of the inner fit.
    """
    adjusted = [rate - compulsory for rate in rates]
    if any(value <= 0 for value in adjusted):
        return None
    peak = max(adjusted)
    kept = [
        (size, value)
        for size, value in zip(sizes, adjusted)
        if value > _RELATIVE_FLOOR * peak
    ]
    if len(kept) < 2:
        return None
    fit = fit_power_law([size for size, _ in kept],
                        [value for _, value in kept])
    sse = sum(
        (rate - (fit.coefficient * size ** (-fit.alpha) + compulsory)) ** 2
        for size, rate in zip(sizes, rates)
    )
    return fit.alpha, fit.coefficient, sse


def fit_yavits(
    curve: MissCurve,
    *,
    min_lines: Optional[int] = None,
    max_lines: Optional[int] = None,
) -> YavitsFit:
    """Fit the extended law to a measured curve.

    The capacity range restriction works like
    :func:`~repro.analysis.fitting.fit_miss_curve`; unlike the pure
    power-law fit there is usually no need to trim the cold floor with
    ``max_lines`` — the floor is the ``m_c`` the fit extracts.
    """
    points = [
        (lines, rate)
        for lines, rate in curve
        if (min_lines is None or lines >= min_lines)
        and (max_lines is None or lines <= max_lines)
    ]
    if len(points) < 3:
        raise ValueError(
            f"only {len(points)} curve points in range; the extended fit "
            f"has three parameters and needs at least 3"
        )
    sizes, rates = zip(*points)
    if any(rate <= 0 for rate in rates):
        raise ValueError(
            "miss rates must be positive; trim zero-miss points before "
            "fitting"
        )

    hi = min(rates) - _FLOOR_MARGIN
    lo = 0.0
    best_floor = 0.0
    best: Optional[Tuple[float, float, float]] = None
    if hi <= lo:
        best = _fit_at_floor(sizes, rates, 0.0)
    else:
        for _ in range(_GRID_REFINEMENTS):
            step = (hi - lo) / _GRID_STEPS
            for index in range(_GRID_STEPS + 1):
                floor = lo + index * step
                candidate = _fit_at_floor(sizes, rates, floor)
                if candidate is None:
                    continue
                if best is None or candidate[2] < best[2]:
                    best = candidate
                    best_floor = floor
            lo = max(0.0, best_floor - step)
            hi = min(min(rates) - _FLOOR_MARGIN, best_floor + step)
    if best is None:
        raise ValueError(
            "no feasible compulsory term: the curve cannot be floored "
            "without non-positive rates"
        )
    alpha, coefficient, sse = best
    mean_rate = sum(rates) / len(rates)
    ss_tot = sum((rate - mean_rate) ** 2 for rate in rates)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - sse / ss_tot
    residuals = tuple(
        rate - (coefficient * size ** (-alpha) + best_floor)
        for size, rate in zip(sizes, rates)
    )
    return YavitsFit(
        alpha=alpha,
        coefficient=coefficient,
        compulsory=best_floor,
        r_squared=r_squared,
        residuals=residuals,
        points=len(points),
    )


def calibrated_model(
    fit: YavitsFit,
    *,
    reference_lines: int,
    line_bytes: int = 64,
    writeback_ratio: float = 0.0,
) -> PowerLawMissModel:
    """A solver-ready miss model anchored at a reference capacity.

    The analytical model is the pure power law, so the calibrated
    baseline is the fit's *capacity* component at the reference size;
    the compulsory term rides along in :class:`YavitsFit` for callers
    that need the floor (e.g. the sharing experiment).
    """
    if reference_lines < 1:
        raise ValueError(
            f"reference_lines must be >= 1, got {reference_lines}"
        )
    if not math.isfinite(fit.alpha) or fit.alpha <= 0:
        raise ValueError(
            f"fitted alpha {fit.alpha!r} is not a valid power-law "
            f"exponent; the curve does not follow a declining power law"
        )
    baseline = fit.coefficient * reference_lines ** (-fit.alpha)
    baseline = min(max(baseline, 0.0), 1.0)
    return PowerLawMissModel(
        alpha=fit.alpha,
        baseline_miss_rate=baseline,
        baseline_cache_size=float(reference_lines * line_bytes),
        writeback_ratio=writeback_ratio,
    )

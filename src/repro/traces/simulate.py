"""Cache simulation over a trace: the whole miss curve in one pass.

The measurement of record is Mattson stack-distance profiling
(:class:`~repro.workloads.stack_distance.StackDistanceProfiler`): one
O(log n)-per-access pass yields the exact fully-associative LRU miss
rate at *every* capacity simultaneously.  A set-associative simulator
(:func:`cross_check_curve`) replays the same trace through a realistic
organisation — one run per capacity — so tests can bound how far finite
associativity bends the curve the fits consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..cache.set_assoc import SetAssociativeCache
from ..workloads.address_stream import MemoryAccess
from ..workloads.stack_distance import MissCurve, StackDistanceProfiler

__all__ = [
    "TraceSimulation",
    "simulate_trace",
    "cross_check_curve",
    "curve_max_delta",
]


@dataclass(frozen=True)
class TraceSimulation:
    """One trace's measured miss behaviour across all capacities."""

    curve: MissCurve
    #: The curve with cold misses always included — what a real cache
    #: sees, and the right comparand for the set-associative check.
    raw_curve: MissCurve
    accesses: int
    cold_misses: int
    distinct_lines: int
    exclude_cold: bool

    @property
    def compulsory_rate(self) -> float:
        """Cold misses per access — the floor a Yavits fit should find."""
        if self.accesses == 0:
            return 0.0
        return self.cold_misses / self.accesses


def simulate_trace(
    stream: Iterable[MemoryAccess],
    cache_line_counts: Sequence[int],
    *,
    line_bytes: int = 64,
    warmup: Optional[Iterable[MemoryAccess]] = None,
    exclude_cold: bool = False,
) -> TraceSimulation:
    """Profile a trace and evaluate its miss curve at every capacity.

    ``warmup`` accesses are recorded (they warm the LRU recency state)
    and then dropped from the statistics, so measurement starts
    stationary; ``exclude_cold`` additionally drops residual compulsory
    misses from the curve — the right setting for pure alpha fitting,
    and the wrong one when the compulsory component *is* the signal
    (sharing studies).
    """
    profiler = StackDistanceProfiler()
    if warmup is not None:
        profiler.record_stream(warmup, line_bytes=line_bytes)
        profiler.reset_statistics()
    profiler.record_stream(stream, line_bytes=line_bytes)
    raw_curve = profiler.miss_curve(cache_line_counts)
    curve = (profiler.miss_curve(cache_line_counts, exclude_cold=True)
             if exclude_cold else raw_curve)
    return TraceSimulation(
        curve=curve,
        raw_curve=raw_curve,
        accesses=profiler.accesses,
        cold_misses=profiler.cold_misses,
        distinct_lines=profiler.distinct_lines,
        exclude_cold=exclude_cold,
    )


def cross_check_curve(
    stream_factory: Callable[[], Iterator[MemoryAccess]],
    cache_line_counts: Sequence[int],
    *,
    line_bytes: int = 64,
    associativity: int = 8,
) -> MissCurve:
    """The same curve through a set-associative cache, one run per size.

    ``stream_factory()`` must return a fresh, identical stream each
    call.  Includes cold misses (a real cache cannot exclude them);
    compare against a ``simulate_trace`` run with
    ``exclude_cold=False``.
    """
    line_counts = []
    rates = []
    for count in sorted(set(cache_line_counts)):
        cache = SetAssociativeCache(
            size_bytes=count * line_bytes,
            line_bytes=line_bytes,
            associativity=associativity,
        )
        for access in stream_factory():
            cache.access(access.address, is_write=access.is_write,
                         core_id=access.core_id)
        line_counts.append(count)
        rates.append(cache.stats.miss_rate)
    return MissCurve(tuple(line_counts), tuple(rates))


def curve_max_delta(reference: MissCurve, other: MissCurve) -> float:
    """Largest |miss-rate difference| at the capacities both curves share."""
    other_rates = dict(zip(other.line_counts, other.miss_rates))
    deltas = [
        abs(rate - other_rates[count])
        for count, rate in zip(reference.line_counts, reference.miss_rates)
        if count in other_rates
    ]
    if not deltas:
        raise ValueError("curves share no capacities to compare")
    return max(deltas)

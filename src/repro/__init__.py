"""repro — a reproduction of "Scaling the Bandwidth Wall" (ISCA 2009).

The package has two halves:

* :mod:`repro.core` — the paper's analytical model: the power law of
  cache misses, the CMP memory-traffic model, the core-scaling solver,
  and every bandwidth-conservation technique of Section 6.
* the measurement substrates the paper's inputs came from, rebuilt in
  Python: a cache simulator (:mod:`repro.cache`), synthetic workload
  generators (:mod:`repro.workloads`), compression engines
  (:mod:`repro.compression`), and a bounded-bandwidth memory system
  (:mod:`repro.memory`), tied together by :mod:`repro.analysis` and the
  per-figure experiment drivers in :mod:`repro.experiments`.

Quickstart
----------
>>> from repro import paper_baseline_model
>>> model = paper_baseline_model()
>>> model.supportable_cores(32).cores   # next generation, constant traffic
11
"""

from .core import (
    ALL_TECHNIQUE_TYPES,
    ALPHA_AVERAGE,
    BASE_CORE,
    BIG_CORE,
    FLAT_ROADMAP,
    ITRS_ROADMAP,
    LITTLE_CORE,
    OPTIMISTIC_ROADMAP,
    BandwidthRoadmap,
    CombinedDesignPoint,
    CombinedWallModel,
    CoreType,
    HeterogeneousMix,
    HeterogeneousWallModel,
    MixSolution,
    MultithreadedWallModel,
    RoadmapPoint,
    SMTParameters,
    asymmetric_speedup,
    best_symmetric_design,
    dynamic_speedup,
    symmetric_speedup,
    wall_onset,
    ALPHA_COMMERCIAL_AVG,
    ALPHA_COMMERCIAL_MAX,
    ALPHA_COMMERCIAL_MIN,
    ALPHA_SPEC2006_AVG,
    NEUTRAL_EFFECT,
    PAPER_COMBINATIONS,
    PAPER_GENERATION_FACTORS,
    TABLE2_ROWS,
    AssumptionLevel,
    BandwidthWallModel,
    CacheCompression,
    CacheLinkCompression,
    Category,
    ChipDesign,
    DataSharingModel,
    DRAMCache,
    GenerationPoint,
    LinkCompression,
    PowerLawMissModel,
    ScalingSolution,
    SectoredCache,
    SmallCacheLines,
    SmallerCores,
    Table2Row,
    Technique,
    TechniqueEffect,
    TechniqueStack,
    ThreeDStackedCache,
    TrafficModel,
    TrafficRatio,
    UnusedDataFiltering,
    paper_baseline_design,
    paper_baseline_model,
    paper_combination,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ChipDesign",
    "PowerLawMissModel",
    "TrafficModel",
    "TrafficRatio",
    "BandwidthWallModel",
    "ScalingSolution",
    "GenerationPoint",
    "DataSharingModel",
    "TechniqueStack",
    "Technique",
    "TechniqueEffect",
    "AssumptionLevel",
    "Category",
    "CacheCompression",
    "DRAMCache",
    "ThreeDStackedCache",
    "UnusedDataFiltering",
    "SmallerCores",
    "LinkCompression",
    "SectoredCache",
    "SmallCacheLines",
    "CacheLinkCompression",
    "NEUTRAL_EFFECT",
    "ALL_TECHNIQUE_TYPES",
    "PAPER_COMBINATIONS",
    "PAPER_GENERATION_FACTORS",
    "TABLE2_ROWS",
    "Table2Row",
    "ALPHA_AVERAGE",
    "ALPHA_COMMERCIAL_AVG",
    "ALPHA_COMMERCIAL_MIN",
    "ALPHA_COMMERCIAL_MAX",
    "ALPHA_SPEC2006_AVG",
    "paper_baseline_design",
    "paper_baseline_model",
    "paper_combination",
    # extensions
    "symmetric_speedup",
    "asymmetric_speedup",
    "dynamic_speedup",
    "best_symmetric_design",
    "CombinedWallModel",
    "CombinedDesignPoint",
    "CoreType",
    "HeterogeneousMix",
    "HeterogeneousWallModel",
    "MixSolution",
    "BIG_CORE",
    "BASE_CORE",
    "LITTLE_CORE",
    "SMTParameters",
    "MultithreadedWallModel",
    "BandwidthRoadmap",
    "RoadmapPoint",
    "wall_onset",
    "ITRS_ROADMAP",
    "OPTIMISTIC_ROADMAP",
    "FLAT_ROADMAP",
]

"""Request deadlines: a budget that travels with the request thread.

A :class:`Deadline` is an absolute expiry on an injectable monotonic
clock.  The service parses one per request from the
``X-Request-Deadline-Ms`` header, installs it in a thread-local scope
(:func:`deadline_scope`) for the duration of the handler, and maps
:class:`DeadlineExceeded` to a 504.  Deep compute loops — the sweep
grid solver, the serial experiment runner — call
:func:`check_deadline` at chunk boundaries, so an expired request
stops consuming its worker thread at the next boundary instead of
running to completion for a client that already gave up.

The scope is thread-local on purpose: request handling is
thread-per-request, and background job workers (which must never be
cancelled by a request's deadline) simply run with no scope installed,
making every check a no-op.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = [
    "DEADLINE_HEADER",
    "MAX_DEADLINE_MS",
    "Deadline",
    "DeadlineExceeded",
    "deadline_from_ms",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
]

#: HTTP request header carrying the client's remaining budget.
DEADLINE_HEADER = "X-Request-Deadline-Ms"

#: Largest accepted header value: anything above a day is a client bug.
MAX_DEADLINE_MS = 86_400_000


class DeadlineExceeded(Exception):
    """The work outlived its deadline (caught at the service boundary)."""

    def __init__(self, message: str, overrun: float = 0.0) -> None:
        super().__init__(message)
        self.overrun = overrun


class Deadline:
    """An absolute expiry with a remaining-time view.

    Parameters
    ----------
    budget:
        Seconds from now until expiry (non-negative).
    clock:
        Injectable monotonic clock; tests freeze it.
    """

    __slots__ = ("budget", "expires_at", "_clock")

    def __init__(self, budget: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        self.budget = float(budget)
        self._clock = clock
        self.expires_at = clock() + self.budget

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        overrun = self._clock() - self.expires_at
        if overrun >= 0:
            where = f" during {context}" if context else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget * 1000:.0f}ms exceeded{where}",
                overrun=overrun,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


def deadline_from_ms(value: str,
                     clock: Callable[[], float] = time.monotonic
                     ) -> Deadline:
    """Parse an ``X-Request-Deadline-Ms`` header value.

    Raises ValueError with a client-quotable message on junk: the
    header is an API surface, so ``-5``/``NaN``/``1e12`` are 400s, not
    silently ignored budgets.
    """
    try:
        ms = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{DEADLINE_HEADER} must be a number of milliseconds, "
            f"got {value!r}"
        ) from None
    if not ms > 0 or ms != ms:
        raise ValueError(
            f"{DEADLINE_HEADER} must be positive, got {value!r}"
        )
    if ms > MAX_DEADLINE_MS:
        raise ValueError(
            f"{DEADLINE_HEADER} must be at most {MAX_DEADLINE_MS}, "
            f"got {value!r}"
        )
    return Deadline(ms / 1000.0, clock=clock)


_scope = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline installed on this thread, if any."""
    return getattr(_scope, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[None]:
    """Install ``deadline`` as this thread's current deadline.

    ``None`` installs nothing (checks stay no-ops) but still restores
    any outer scope on exit, so nesting is safe.
    """
    previous = current_deadline()
    _scope.deadline = deadline
    try:
        yield
    finally:
        _scope.deadline = previous


def check_deadline(context: str = "") -> None:
    """Cooperative cancellation point: cheap no-op without a scope."""
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(context)

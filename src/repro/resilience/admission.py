"""Admission control: bounded, cost-aware load shedding.

The service's shared resource is its worker threads.  Without a
bound, a burst of expensive requests (grid sweeps, simulation-backed
experiment renders) occupies every thread and *cheap* traffic —
health checks, single solves, job polling — queues behind multi-second
work.  That is the serving-layer version of the paper's bandwidth
wall: an unmanaged shared resource collapsing under load instead of
saturating gracefully.

:class:`AdmissionController` gives the expensive tier an explicit
budget:

* at most ``capacity`` expensive requests execute concurrently;
* at most ``queue_limit`` more may wait, each for at most
  ``queue_timeout`` seconds (clamped to the request's deadline);
* everything beyond that is **shed immediately** with
  :class:`SaturatedError`, which the HTTP layer maps to
  429 + ``Retry-After``.

Cheap requests are never queued or shed — they are only counted, so
``/healthz`` stays sub-millisecond while the expensive tier is
saturated.  The controller is pure python + ``threading.Condition``;
unit tests drive it with plain threads and no sockets.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from .deadline import Deadline

__all__ = [
    "CHEAP",
    "EXPENSIVE",
    "SaturatedError",
    "AdmissionController",
]

#: Request cost classes.  Cheap: always admitted (healthz, metrics,
#: single solves, job polling).  Expensive: budgeted (sweep grids,
#: experiment renders).
CHEAP = "cheap"
EXPENSIVE = "expensive"


class SaturatedError(Exception):
    """The expensive tier is full; retry after ``retry_after`` seconds."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(
            f"expensive-request capacity saturated ({reason}); "
            f"retry in {retry_after:.2f}s"
        )
        self.reason = reason
        self.retry_after = max(0.0, retry_after)


class AdmissionController:
    """Bounded expensive-request slots with a short, bounded queue.

    Parameters
    ----------
    capacity:
        Expensive requests allowed to execute concurrently.
    queue_limit:
        Expensive requests allowed to wait for a slot; ``0`` sheds the
        moment all slots are busy.
    queue_timeout:
        Longest a queued request waits before being shed (clamped
        further by the request's own deadline).
    retry_after:
        Floor for the ``Retry-After`` hint; the controller scales it
        by observed hold times and queue depth.
    clock:
        Injectable monotonic clock (used for hold-time accounting and
        wait bookkeeping; the condition still waits in real time).
    """

    def __init__(
        self,
        *,
        capacity: int = 4,
        queue_limit: int = 8,
        queue_timeout: float = 0.5,
        retry_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if queue_limit < 0:
            raise ValueError(
                f"queue_limit must be non-negative, got {queue_limit}"
            )
        if queue_timeout < 0:
            raise ValueError(
                f"queue_timeout must be non-negative, got {queue_timeout}"
            )
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self.retry_after_floor = max(0.0, retry_after)
        self._clock = clock
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._cheap_active = 0
        self._admitted = {CHEAP: 0, EXPENSIVE: 0}
        self._shed: Dict[str, int] = {}
        self._hold_ewma = 0.0  # seconds an expensive slot stays held

    @contextmanager
    def admit(self, cost: str = CHEAP,
              deadline: Optional[Deadline] = None) -> Iterator[None]:
        """Hold one admission for the duration of the ``with`` body.

        Cheap admissions never block.  Expensive admissions take a
        slot, wait bounded for one, or raise :class:`SaturatedError`.
        """
        if cost not in (CHEAP, EXPENSIVE):
            raise ValueError(f"unknown cost class {cost!r}")
        if cost == CHEAP:
            with self._cond:
                self._cheap_active += 1
                self._admitted[CHEAP] += 1
            try:
                yield
            finally:
                with self._cond:
                    self._cheap_active -= 1
            return

        self._acquire_expensive(deadline)
        held_from = self._clock()
        try:
            yield
        finally:
            held = self._clock() - held_from
            with self._cond:
                self._active -= 1
                # EWMA of slot hold time feeds the Retry-After hint.
                self._hold_ewma = (held if self._hold_ewma == 0.0
                                   else 0.8 * self._hold_ewma + 0.2 * held)
                self._cond.notify()

    # -- observability -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The /healthz view: occupancy, queue, shed tallies."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "active": self._active,
                "waiting": self._waiting,
                "queue_limit": self.queue_limit,
                "cheap_active": self._cheap_active,
                "admitted": dict(self._admitted),
                "shed": dict(self._shed),
            }

    def active(self) -> int:
        with self._cond:
            return self._active

    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    def shed_total(self) -> int:
        with self._cond:
            return sum(self._shed.values())

    # -- internals -----------------------------------------------------

    def _acquire_expensive(self, deadline: Optional[Deadline]) -> None:
        with self._cond:
            if self._active < self.capacity:
                self._active += 1
                self._admitted[EXPENSIVE] += 1
                return
            if self._waiting >= self.queue_limit:
                raise self._shed_locked("queue_full")
            budget = self.queue_timeout
            if deadline is not None:
                budget = min(budget, deadline.remaining())
            if budget <= 0:
                raise self._shed_locked("queue_timeout")
            self._waiting += 1
            limit = self._clock() + budget
            try:
                while self._active >= self.capacity:
                    remaining = limit - self._clock()
                    if remaining <= 0:
                        raise self._shed_locked("queue_timeout")
                    self._cond.wait(remaining)
                self._active += 1
                self._admitted[EXPENSIVE] += 1
            finally:
                self._waiting -= 1

    def _shed_locked(self, reason: str) -> SaturatedError:
        self._shed[reason] = self._shed.get(reason, 0) + 1
        # Hint: roughly how long until a slot should free up, given the
        # observed hold time and everyone already in line.
        depth = self._active + self._waiting
        estimate = self._hold_ewma * max(1, depth) / self.capacity
        return SaturatedError(
            reason, max(self.retry_after_floor, estimate)
        )

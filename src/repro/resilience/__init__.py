"""Resilience primitives: deadlines, admission control, breakers, chaos.

This package holds the pure-python state machines the service layer
composes to saturate gracefully instead of collapsing — the serving
analogue of the paper's bandwidth-wall argument that shared resources
need explicit budgets:

* :mod:`repro.resilience.deadline` — per-request budgets propagated in
  a thread-local scope with cooperative cancellation checks;
* :mod:`repro.resilience.admission` — bounded, cost-aware load
  shedding for the expensive request tier;
* :mod:`repro.resilience.breaker` — a closed/open/half-open circuit
  breaker for the sqlite job store;
* :mod:`repro.resilience.faultinject` — seeded, scenario-scripted
  fault injection so every one of the above is testable
  deterministically, without sockets or real failures.
"""

from .admission import (
    CHEAP,
    EXPENSIVE,
    AdmissionController,
    SaturatedError,
)
from .breaker import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    STATE_VALUES,
    BreakerOpenError,
    CircuitBreaker,
)
from .deadline import (
    DEADLINE_HEADER,
    MAX_DEADLINE_MS,
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_from_ms,
    deadline_scope,
)
from .faultinject import (
    BUILTIN_PROFILES,
    FAULT_PROFILE_ENV,
    FaultInjector,
    FaultProfile,
    FaultRule,
    FaultyJobStore,
    FaultyResponseCache,
    SimulatedCrash,
    builtin_profile_names,
    faulty_execute_chunk,
    faulty_store,
    injector_from_env,
    load_profile,
)

__all__ = [
    # deadline
    "DEADLINE_HEADER",
    "MAX_DEADLINE_MS",
    "Deadline",
    "DeadlineExceeded",
    "deadline_from_ms",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
    # admission
    "CHEAP",
    "EXPENSIVE",
    "AdmissionController",
    "SaturatedError",
    # breaker
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "STATE_VALUES",
    "LEGAL_TRANSITIONS",
    "BreakerOpenError",
    "CircuitBreaker",
    # faultinject
    "FAULT_PROFILE_ENV",
    "SimulatedCrash",
    "FaultRule",
    "FaultProfile",
    "FaultInjector",
    "FaultyJobStore",
    "FaultyResponseCache",
    "BUILTIN_PROFILES",
    "builtin_profile_names",
    "load_profile",
    "injector_from_env",
    "faulty_store",
    "faulty_execute_chunk",
]

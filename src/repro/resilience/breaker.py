"""Circuit breaker: fail fast when a dependency is down.

The classic three-state machine, tuned for wrapping the sqlite job
store:

* **closed** — calls flow through; failures are recorded in a rolling
  time window.  When the window accumulates ``failure_threshold``
  failures the breaker *opens*.
* **open** — every :meth:`CircuitBreaker.allow` raises
  :class:`BreakerOpenError` immediately (callers translate that to a
  503 with ``Retry-After``), so a dead store costs microseconds per
  request instead of a blocked worker thread.  After
  ``recovery_time`` seconds the next ``allow`` moves to half-open.
* **half-open** — up to ``half_open_probes`` trial calls are let
  through.  Any failure re-opens the breaker (fresh recovery clock);
  ``half_open_probes`` successes close it and clear the window.

Everything is pure python over an injectable monotonic clock, so the
state machine is unit- and property-testable without sockets or
sleeps.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "STATE_VALUES",
    "LEGAL_TRANSITIONS",
    "BreakerOpenError",
    "CircuitBreaker",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the ``resilience_breaker_state`` gauge.
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Every edge the machine may take; property tests assert no others.
LEGAL_TRANSITIONS = frozenset([
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, OPEN),
    (HALF_OPEN, CLOSED),
])


class BreakerOpenError(Exception):
    """The breaker refused the call; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker over a rolling window.

    Parameters
    ----------
    name:
        Dependency label used in error messages and snapshots.
    failure_threshold:
        Failures within ``window`` seconds that trip the breaker.
    window:
        Rolling failure-window length in seconds.
    recovery_time:
        Seconds the breaker stays open before probing.
    half_open_probes:
        Trial calls admitted half-open; the same count of consecutive
        successes closes the breaker.
    clock:
        Injectable monotonic clock.
    on_transition:
        Optional ``(from_state, to_state)`` callback — the service
        feeds its transition counter through this; property tests use
        it to assert edge legality.
    """

    def __init__(
        self,
        *,
        name: str = "dependency",
        failure_threshold: int = 5,
        window: float = 30.0,
        recovery_time: float = 5.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if recovery_time <= 0:
            raise ValueError(
                f"recovery_time must be positive, got {recovery_time}"
            )
        if half_open_probes <= 0:
            raise ValueError(
                f"half_open_probes must be positive, got {half_open_probes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.window = window
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0
        self._open_total = 0

    # -- gatekeeping ---------------------------------------------------

    def allow(self) -> None:
        """Admit one call or raise :class:`BreakerOpenError`.

        Every admitted call must be resolved with
        :meth:`record_success` or :meth:`record_failure` (use
        :meth:`call` to get the pairing for free).
        """
        with self._lock:
            self._advance_locked()
            if self._state == OPEN:
                raise BreakerOpenError(
                    f"{self.name} circuit is open; "
                    f"retry in {self._retry_after_locked():.2f}s",
                    retry_after=self._retry_after_locked(),
                )
            if self._state == HALF_OPEN:
                if self._probes_inflight >= self.half_open_probes:
                    raise BreakerOpenError(
                        f"{self.name} circuit is half-open and its "
                        f"probe budget is in use",
                        retry_after=self.recovery_time / 2,
                    )
                self._probes_inflight += 1

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_probes:
                    self._transition_locked(CLOSED)
            # Closed: successes don't clear recorded failures — only
            # the window sliding does, so a slow trickle of failures
            # under load still trips the breaker.

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            if self._state == HALF_OPEN:
                self._transition_locked(OPEN)
                return
            if self._state == OPEN:
                return
            self._failures.append(now)
            self._prune_locked(now)
            if len(self._failures) >= self.failure_threshold:
                self._transition_locked(OPEN)

    def call(self, func: Callable[..., Any], *args: Any,
             **kwargs: Any) -> Any:
        """Run ``func`` under the breaker: allow → run → record."""
        self.allow()
        try:
            result = func(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # -- observability -------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._advance_locked()
            return self._state

    def state_value(self) -> int:
        """The gauge encoding: 0 closed, 1 half-open, 2 open."""
        return STATE_VALUES[self.state]

    def retry_after(self) -> float:
        """Seconds until an open breaker starts probing (0 otherwise)."""
        with self._lock:
            self._advance_locked()
            if self._state != OPEN:
                return 0.0
            return self._retry_after_locked()

    def snapshot(self) -> Dict[str, Any]:
        """The /healthz view of this breaker."""
        with self._lock:
            self._advance_locked()
            now = self._clock()
            self._prune_locked(now)
            return {
                "name": self.name,
                "state": self._state,
                "recent_failures": len(self._failures),
                "failure_threshold": self.failure_threshold,
                "opened_total": self._open_total,
                "retry_after": (self._retry_after_locked()
                                if self._state == OPEN else 0.0),
            }

    # -- internals (lock held) -----------------------------------------

    def _advance_locked(self) -> None:
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.recovery_time:
            self._transition_locked(HALF_OPEN)

    def _transition_locked(self, to_state: str) -> None:
        from_state = self._state
        if from_state == to_state:
            return
        self._state = to_state
        if to_state == OPEN:
            self._opened_at = self._clock()
            self._open_total += 1
        if to_state in (HALF_OPEN, CLOSED):
            self._probes_inflight = 0
            self._probe_successes = 0
        if to_state == CLOSED:
            self._failures.clear()
        if self._on_transition is not None:
            self._on_transition(from_state, to_state)

    def _prune_locked(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window:
            self._failures.popleft()

    def _retry_after_locked(self) -> float:
        return max(0.0,
                   self._opened_at + self.recovery_time - self._clock())

"""Deterministic fault injection: scripted chaos that replays exactly.

A :class:`FaultProfile` is a seeded script of :class:`FaultRule`\\ s.
Each rule names a **target** (a dotted call-site label such as
``store.lease``, ``worker.chunk``, ``cache.lookup`` or ``clock`` —
fnmatch patterns like ``store.*`` are allowed) and an **action**:

``error``
    raise ``sqlite3.OperationalError`` ("database is locked" by
    default) — the store-fault class the circuit breaker exists for;
``latency``
    sleep ``latency`` seconds before the call (worker stalls, slow
    disks);
``crash``
    raise :class:`SimulatedCrash` — a ``BaseException``, so it sails
    past retry boundaries exactly like a SIGKILL would and the lease
    must expire before anyone resumes the job;
``skew``
    add ``skew`` seconds to the wrapped store clock (lease-expiry
    clock skew).

Rules fire deterministically: each rule keeps a per-rule call counter
(``after`` skips the first N matching calls, ``times`` caps firings)
and probabilistic rules draw from one ``random.Random(profile.seed)``
in rule order — so a given profile, seed and call sequence replays
byte-identically, which is what lets the chaos suite assert that
resumed job artifacts equal the golden bytes under every profile.

Wrappers
--------
:func:`faulty_store` builds a :class:`~repro.jobs.store.JobStore`
whose clock is skew-injected and wraps it in :class:`FaultyJobStore`
(method-call fault points).  :func:`faulty_execute_chunk` wraps the
job executor; :class:`FaultyResponseCache` wraps the service response
cache.  The service and the standalone worker activate all of them
from ``serve --fault-profile`` / the ``REPRO_FAULT_PROFILE`` env var.
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

__all__ = [
    "FAULT_PROFILE_ENV",
    "ACTIONS",
    "SimulatedCrash",
    "FaultRule",
    "FaultProfile",
    "FaultInjector",
    "FaultyJobStore",
    "FaultyResponseCache",
    "BUILTIN_PROFILES",
    "builtin_profile_names",
    "load_profile",
    "injector_from_env",
    "faulty_store",
    "faulty_execute_chunk",
]

#: Environment variable naming a builtin profile or a JSON profile file.
FAULT_PROFILE_ENV = "REPRO_FAULT_PROFILE"

ACTIONS = ("error", "latency", "crash", "skew")


class SimulatedCrash(BaseException):
    """An injected hard crash.

    Deliberately a ``BaseException``: the worker's chunk-retry
    boundary catches ``Exception``, and a *crash* must not be
    mistaken for a retryable chunk failure — the lease has to expire,
    exactly as if the process had been SIGKILLed.
    """


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault: where, what, and how often."""

    target: str
    action: str
    probability: float = 1.0
    after: int = 0
    times: Optional[int] = None
    latency: float = 0.0
    skew: float = 0.0
    error: str = "database is locked"

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"choose from {list(ACTIONS)}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.after < 0:
            raise ValueError(f"after must be non-negative, got {self.after}")
        if self.times is not None and self.times <= 0:
            raise ValueError(f"times must be positive, got {self.times}")
        if self.action == "latency" and self.latency <= 0:
            raise ValueError("latency action needs latency > 0")
        if self.action == "skew" and self.skew == 0:
            raise ValueError("skew action needs a non-zero skew")

    def matches(self, target: str) -> bool:
        return fnmatch.fnmatchcase(target, self.target)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"target": self.target,
                                   "action": self.action}
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.after:
            payload["after"] = self.after
        if self.times is not None:
            payload["times"] = self.times
        if self.latency:
            payload["latency"] = self.latency
        if self.skew:
            payload["skew"] = self.skew
        if self.error != "database is locked":
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        if not isinstance(payload, dict):
            raise ValueError(
                f"fault rule must be a mapping, got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "target", "action", "probability", "after", "times",
            "latency", "skew", "error",
        }
        if unknown:
            raise ValueError(f"unknown fault rule keys: {sorted(unknown)}")
        if "target" not in payload or "action" not in payload:
            raise ValueError("fault rule needs 'target' and 'action'")
        return cls(
            target=str(payload["target"]),
            action=str(payload["action"]),
            probability=float(payload.get("probability", 1.0)),
            after=int(payload.get("after", 0)),
            times=(None if payload.get("times") is None
                   else int(payload["times"])),
            latency=float(payload.get("latency", 0.0)),
            skew=float(payload.get("skew", 0.0)),
            error=str(payload.get("error", "database is locked")),
        )


@dataclass(frozen=True)
class FaultProfile:
    """A named, seeded fault script."""

    name: str
    seed: int
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultProfile":
        if not isinstance(payload, dict):
            raise ValueError(
                f"fault profile must be a mapping, "
                f"got {type(payload).__name__}"
            )
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ValueError("fault profile 'rules' must be a list")
        return cls(
            name=str(payload.get("name", "custom")),
            seed=int(payload.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultProfile":
        text = Path(path).read_text(encoding="utf-8")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"fault profile {path} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(payload)


#: Shipped chaos scenarios.  Seeds are arbitrary but fixed: CI and the
#: chaos suite replay these exact firing sequences forever.
BUILTIN_PROFILES: Dict[str, FaultProfile] = {
    "store-errors": FaultProfile(
        name="store-errors", seed=1301,
        rules=(
            FaultRule(target="store.lease", action="error",
                      probability=0.3, times=4),
            FaultRule(target="store.checkpoint", action="error",
                      probability=0.3, times=3),
            FaultRule(target="store.renew_lease", action="error",
                      probability=0.5, times=2),
        ),
    ),
}
# Built entry-by-entry so each scenario stays readable.
BUILTIN_PROFILES["worker-stall"] = FaultProfile(
    name="worker-stall", seed=905,
    rules=(
        FaultRule(target="worker.chunk", action="latency",
                  latency=0.2, times=3),
    ),
)
BUILTIN_PROFILES["midchunk-crash"] = FaultProfile(
    name="midchunk-crash", seed=1106,
    rules=(
        FaultRule(target="worker.chunk", action="crash",
                  after=1, times=1),
    ),
)
BUILTIN_PROFILES["clock-skew"] = FaultProfile(
    name="clock-skew", seed=2207,
    rules=(
        FaultRule(target="clock", action="skew", skew=45.0,
                  after=4, times=3),
    ),
)
BUILTIN_PROFILES["cache-latency"] = FaultProfile(
    name="cache-latency", seed=707,
    rules=(
        FaultRule(target="cache.lookup", action="latency",
                  latency=0.05, probability=0.5, times=10),
    ),
)
BUILTIN_PROFILES["breaker-trip"] = FaultProfile(
    name="breaker-trip", seed=404,
    rules=(
        FaultRule(target="store.*", action="error",
                  error="disk I/O error"),
    ),
)


def builtin_profile_names() -> Tuple[str, ...]:
    return tuple(sorted(BUILTIN_PROFILES))


def load_profile(spec: str) -> FaultProfile:
    """Resolve a profile: builtin name first, then a JSON file path."""
    if spec in BUILTIN_PROFILES:
        return BUILTIN_PROFILES[spec]
    path = Path(spec)
    if path.exists():
        return FaultProfile.from_file(path)
    raise ValueError(
        f"unknown fault profile {spec!r}: not a builtin "
        f"({', '.join(builtin_profile_names())}) and no such file"
    )


def injector_from_env(
        environ: Optional[Dict[str, str]] = None) -> Optional["FaultInjector"]:
    """Build an injector from ``REPRO_FAULT_PROFILE``, if set."""
    spec = (environ if environ is not None else os.environ).get(
        FAULT_PROFILE_ENV)
    if not spec:
        return None
    return FaultInjector(load_profile(spec))


class FaultInjector:
    """Evaluates a profile's rules at every instrumented call site.

    ``sleep`` is injectable so the chaos suite can script latency
    faults without real waiting; the firing sequence is unaffected.
    """

    def __init__(self, profile: FaultProfile, *,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.profile = profile
        self._sleep = sleep
        self._rng = random.Random(profile.seed)
        self._lock = threading.Lock()
        self._calls = [0] * len(profile.rules)
        self._fired = [0] * len(profile.rules)
        self._skew = 0.0

    def on_call(self, target: str) -> None:
        """Apply every rule that fires for ``target`` (may raise)."""
        pending_latency = 0.0
        with self._lock:
            for index, rule in enumerate(self.profile.rules):
                if not rule.matches(target):
                    continue
                seen = self._calls[index]
                self._calls[index] += 1
                if seen < rule.after:
                    continue
                if rule.times is not None and \
                        self._fired[index] >= rule.times:
                    continue
                if rule.probability < 1.0 and \
                        self._rng.random() >= rule.probability:
                    continue
                self._fired[index] += 1
                if rule.action == "skew":
                    self._skew += rule.skew
                elif rule.action == "latency":
                    pending_latency += rule.latency
                elif rule.action == "error":
                    raise sqlite3.OperationalError(
                        f"injected fault at {target}: {rule.error}"
                    )
                else:  # crash
                    raise SimulatedCrash(f"injected crash at {target}")
        if pending_latency > 0:
            self._sleep(pending_latency)

    def current_skew(self) -> float:
        with self._lock:
            return self._skew

    def tick_clock(self) -> float:
        """Clock fault point: fire ``clock`` rules, return the skew."""
        self.on_call("clock")
        return self.current_skew()

    def stats(self) -> Dict[str, Any]:
        """Per-rule firing counts — surfaced in /healthz and tests."""
        with self._lock:
            return {
                "profile": self.profile.name,
                "seed": self.profile.seed,
                "skew": self._skew,
                "rules": [
                    {
                        "target": rule.target,
                        "action": rule.action,
                        "calls": self._calls[index],
                        "fired": self._fired[index],
                    }
                    for index, rule in enumerate(self.profile.rules)
                ],
            }


# ----------------------------------------------------------------------
# Wrappers
# ----------------------------------------------------------------------

#: JobStore methods that become fault points (``store.<name>``).
STORE_FAULT_POINTS = frozenset((
    "submit", "get", "list_jobs", "counts", "retries_total",
    "queue_depth", "running_count", "lease", "renew_lease", "release",
    "checkpoint", "checkpoints", "finish", "request_cancel",
))


class FaultyJobStore:
    """A JobStore proxy that consults the injector before every call.

    Pure delegation otherwise: attributes (``state_dir``, ``path``)
    and un-instrumented methods pass straight through, so a
    ``FaultyJobStore`` drops in anywhere a ``JobStore`` does.
    """

    def __init__(self, store: Any, injector: FaultInjector) -> None:
        self._store = store
        self._injector = injector

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._store, name)
        if name in STORE_FAULT_POINTS:
            injector = self._injector

            def instrumented(*args: Any, **kwargs: Any) -> Any:
                injector.on_call(f"store.{name}")
                return attr(*args, **kwargs)

            return instrumented
        return attr


class FaultyResponseCache:
    """A ResponseCache whose lookups are fault points (``cache.lookup``).

    Composition, not subclassing, and the
    :class:`~repro.service.cache.ResponseCache` import is deferred to
    construction time: the resilience package must stay importable
    without touching the service package (service → resilience is the
    only compile-time edge; a top-level reverse import would make the
    order the two packages are first imported in matter).
    """

    def __init__(self, injector: FaultInjector, **kwargs: Any) -> None:
        from ..service.cache import ResponseCache

        self._cache = ResponseCache(**kwargs)
        self._injector = injector

    def get_or_compute(self, key: Any, compute: Callable[[], Any],
                       **kwargs: Any) -> Any:
        self._injector.on_call("cache.lookup")
        return self._cache.get_or_compute(key, compute, **kwargs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._cache, name)

    def __len__(self) -> int:
        return len(self._cache)


def faulty_store(state_dir: Union[str, Path], injector: FaultInjector,
                 *, clock: Callable[[], float] = time.time
                 ) -> FaultyJobStore:
    """A JobStore with an injected (skewable) clock, fault-wrapped."""
    from ..jobs.store import JobStore

    skewed = lambda: clock() + injector.tick_clock()  # noqa: E731
    return FaultyJobStore(JobStore(state_dir, clock=skewed), injector)


def faulty_execute_chunk(
    injector: FaultInjector,
    base: Optional[Callable[..., Dict[str, Any]]] = None,
) -> Callable[..., Dict[str, Any]]:
    """Wrap the chunk executor with the ``worker.chunk`` fault point."""
    if base is None:
        from ..jobs import executor as executor_mod

        base = executor_mod.execute_chunk

    def execute(spec: Any, index: int) -> Dict[str, Any]:
        injector.on_call("worker.chunk")
        return base(spec, index)

    return execute

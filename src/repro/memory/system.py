"""Cores + caches + bounded channel: the bandwidth-wall demonstrator.

The paper's introduction asserts the plateau: "If the provided off-chip
memory bandwidth cannot sustain the rate at which memory requests are
generated ... adding more cores to the chip no longer yields any
additional throughput or performance."  This module *shows* it, two ways:

* :class:`AnalyticThroughputModel` — closed form: per-core throughput is
  clipped by each core's share of the channel;
* :class:`BoundedBandwidthSimulation` — an event-driven run where cores
  compute, miss, and stall on a shared FIFO channel; the measured
  instructions-per-cycle curve flattens at exactly the analytic
  saturation point.

Both take the miss rate from the power law, so growing the core count at
fixed die size (less cache per core) steepens the wall — the same
coupling Equation 5 captures.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List

from .channel import ChannelRequest, OffChipChannel

__all__ = [
    "CoreParameters",
    "AnalyticThroughputModel",
    "SimulatedThroughput",
    "BoundedBandwidthSimulation",
]


@dataclass(frozen=True)
class CoreParameters:
    """A simple in-order core's memory behaviour.

    Parameters
    ----------
    miss_rate:
        Off-chip misses per instruction (from cache size via power law).
    line_bytes:
        Transfer size per miss (64B, plus the write-back fraction folded
        in by the caller if desired).
    base_ipc:
        Instructions per cycle with a perfect memory system.
    miss_penalty_cycles:
        Unloaded memory latency (DRAM access, no queueing).
    """

    miss_rate: float
    line_bytes: int = 64
    base_ipc: float = 1.0
    miss_penalty_cycles: float = 100.0

    def __post_init__(self) -> None:
        if not 0 <= self.miss_rate <= 1:
            raise ValueError(f"miss_rate must be in [0, 1], got {self.miss_rate}")
        if self.line_bytes <= 0:
            raise ValueError(f"line_bytes must be positive, got {self.line_bytes}")
        if self.base_ipc <= 0:
            raise ValueError(f"base_ipc must be positive, got {self.base_ipc}")
        if self.miss_penalty_cycles < 0:
            raise ValueError(
                f"miss_penalty_cycles must be >= 0, got {self.miss_penalty_cycles}"
            )

    @property
    def unloaded_ipc(self) -> float:
        """IPC with the memory latency but no bandwidth contention."""
        cpi = 1.0 / self.base_ipc + self.miss_rate * self.miss_penalty_cycles
        return 1.0 / cpi

    @property
    def bytes_per_cycle_demand(self) -> float:
        """Off-chip bytes per cycle one unthrottled core generates."""
        return self.unloaded_ipc * self.miss_rate * self.line_bytes


class AnalyticThroughputModel:
    """Closed-form chip throughput under a bandwidth envelope."""

    def __init__(self, core: CoreParameters, bytes_per_cycle: float) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError(
                f"bytes_per_cycle must be positive, got {bytes_per_cycle}"
            )
        self.core = core
        self.bytes_per_cycle = bytes_per_cycle

    def saturation_cores(self) -> float:
        """Core count at which the channel saturates."""
        demand = self.core.bytes_per_cycle_demand
        if demand == 0:
            return math.inf
        return self.bytes_per_cycle / demand

    def chip_throughput(self, num_cores: int) -> float:
        """Aggregate IPC for ``num_cores`` cores.

        Below saturation throughput is linear in cores; above it, the
        channel caps the miss rate the chip can sustain, so throughput
        is flat at ``bandwidth / (miss_rate * line_bytes)`` instructions
        per cycle.
        """
        if num_cores < 0:
            raise ValueError(f"num_cores must be >= 0, got {num_cores}")
        unconstrained = num_cores * self.core.unloaded_ipc
        if self.core.miss_rate == 0:
            return unconstrained
        cap = self.bytes_per_cycle / (self.core.miss_rate * self.core.line_bytes)
        return min(unconstrained, cap)

    def per_core_throughput(self, num_cores: int) -> float:
        if num_cores == 0:
            return 0.0
        return self.chip_throughput(num_cores) / num_cores


@dataclass(frozen=True)
class SimulatedThroughput:
    """Result of one bounded-bandwidth simulation run."""

    num_cores: int
    instructions: int
    cycles: float
    channel_utilisation: float
    mean_queueing_delay: float

    @property
    def chip_ipc(self) -> float:
        if self.cycles == 0:
            raise ValueError("zero-cycle run")
        return self.instructions / self.cycles

    @property
    def per_core_ipc(self) -> float:
        return self.chip_ipc / self.num_cores


class BoundedBandwidthSimulation:
    """Event-driven cores sharing one off-chip channel.

    Each core repeats: execute ``1 / miss_rate`` instructions (taking
    ``instructions / base_ipc`` cycles), then issue a line transfer and
    stall for the unloaded penalty plus any queueing delay.  The
    simulation is deterministic — the point is the throughput *curve*,
    not micro-variance.
    """

    def __init__(self, core: CoreParameters, bytes_per_cycle: float) -> None:
        if core.miss_rate <= 0:
            raise ValueError(
                "simulation needs a positive miss rate (otherwise there is "
                "no memory traffic to bound)"
            )
        self.core = core
        self.bytes_per_cycle = bytes_per_cycle

    def run(self, num_cores: int, instructions_per_core: int
            ) -> SimulatedThroughput:
        """Simulate until every core retires its instruction quota."""
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        if instructions_per_core <= 0:
            raise ValueError(
                "instructions_per_core must be positive, got "
                f"{instructions_per_core}"
            )
        core = self.core
        channel = OffChipChannel(self.bytes_per_cycle)
        burst_instructions = max(1, round(1.0 / core.miss_rate))
        compute_cycles = burst_instructions / core.base_ipc
        bursts = max(1, instructions_per_core // burst_instructions)

        # Event heap of (time, core_id, bursts_remaining).
        heap: List = [(compute_cycles, core_id, bursts) for core_id in
                      range(num_cores)]
        heapq.heapify(heap)
        finish_time = 0.0
        while heap:
            now, core_id, remaining = heapq.heappop(heap)
            request = ChannelRequest(
                core_id=core_id,
                num_bytes=core.line_bytes,
                issue_cycle=now,
            )
            done = channel.submit(request) + core.miss_penalty_cycles
            finish_time = max(finish_time, done)
            if remaining > 1:
                heapq.heappush(
                    heap, (done + compute_cycles, core_id, remaining - 1)
                )
        instructions = num_cores * bursts * burst_instructions
        return SimulatedThroughput(
            num_cores=num_cores,
            instructions=instructions,
            cycles=finish_time,
            channel_utilisation=channel.utilisation(finish_time),
            mean_queueing_delay=channel.mean_queueing_delay,
        )

    def throughput_curve(
        self, core_counts, instructions_per_core: int = 20_000
    ) -> List[SimulatedThroughput]:
        """Run the simulation for each core count."""
        return [self.run(p, instructions_per_core) for p in core_counts]

"""Queueing-theory view of the off-chip memory interface.

Section 1 of the paper argues that once the memory-request rate reaches
the available off-chip bandwidth, "the extra queuing delay for memory
requests will force the performance of the cores to decline until the
rate of memory requests matches the available off-chip bandwidth".  The
closed-form models here quantify that: the memory channel is a single
server; cores offer load; waiting time blows up as utilisation
approaches 1.

Two classic stations are provided — M/M/1 (exponential service) and
M/D/1 (deterministic service, the better model for fixed-size line
transfers) — plus the saturation-throughput law used by
:mod:`repro.memory.system`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["QueueModel", "mm1_waiting_time", "md1_waiting_time",
           "saturation_throughput"]


def _check_rates(arrival_rate: float, service_rate: float) -> None:
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be > 0, got {service_rate}")


def mm1_waiting_time(arrival_rate: float, service_rate: float) -> float:
    """Mean time in queue (excluding service) for an M/M/1 station.

    ``W_q = rho / (mu - lambda)``; infinite at/beyond saturation.
    """
    _check_rates(arrival_rate, service_rate)
    rho = arrival_rate / service_rate
    if rho >= 1:
        return math.inf
    return rho / (service_rate - arrival_rate)


def md1_waiting_time(arrival_rate: float, service_rate: float) -> float:
    """Mean queueing delay for M/D/1 (deterministic service).

    ``W_q = rho / (2 mu (1 - rho))`` — half the M/M/1 delay, because
    fixed-size cache-line transfers have no service-time variance.
    """
    _check_rates(arrival_rate, service_rate)
    rho = arrival_rate / service_rate
    if rho >= 1:
        return math.inf
    return rho / (2 * service_rate * (1 - rho))


def saturation_throughput(
    offered_rate: float, service_rate: float
) -> float:
    """Accepted request rate: offered load clipped by channel capacity."""
    _check_rates(offered_rate, service_rate)
    return min(offered_rate, service_rate)


@dataclass(frozen=True)
class QueueModel:
    """A memory channel as a queueing station.

    Parameters
    ----------
    bytes_per_cycle:
        Raw channel bandwidth.
    bytes_per_request:
        Transfer size (a cache line, possibly compressed).
    deterministic:
        Use M/D/1 (True, default — line transfers are fixed-size) or
        M/M/1.
    """

    bytes_per_cycle: float
    bytes_per_request: float
    deterministic: bool = True

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError(
                f"bytes_per_cycle must be positive, got {self.bytes_per_cycle}"
            )
        if self.bytes_per_request <= 0:
            raise ValueError(
                f"bytes_per_request must be positive, got {self.bytes_per_request}"
            )

    @property
    def service_rate(self) -> float:
        """Requests the channel can complete per cycle."""
        return self.bytes_per_cycle / self.bytes_per_request

    def utilisation(self, request_rate: float) -> float:
        """Offered utilisation (may exceed 1 = oversubscribed)."""
        if request_rate < 0:
            raise ValueError(f"request_rate must be >= 0, got {request_rate}")
        return request_rate / self.service_rate

    def queueing_delay(self, request_rate: float) -> float:
        """Mean cycles a request waits before transfer begins."""
        if self.deterministic:
            return md1_waiting_time(request_rate, self.service_rate)
        return mm1_waiting_time(request_rate, self.service_rate)

    def total_latency(self, request_rate: float) -> float:
        """Queueing delay plus the transfer itself."""
        return self.queueing_delay(request_rate) + 1.0 / self.service_rate

    def accepted_rate(self, offered_rate: float) -> float:
        """Requests per cycle actually served under saturation."""
        return saturation_throughput(offered_rate, self.service_rate)

    def with_compression(self, ratio: float) -> "QueueModel":
        """The same channel carrying link-compressed transfers.

        A compression ratio ``r`` shrinks each request to ``1/r`` of its
        raw size — exactly the ``traffic_factor`` of the analytical
        model's link-compression technique.
        """
        if ratio < 1:
            raise ValueError(f"compression ratio must be >= 1, got {ratio}")
        return QueueModel(
            bytes_per_cycle=self.bytes_per_cycle,
            bytes_per_request=self.bytes_per_request / ratio,
            deterministic=self.deterministic,
        )

"""Memory-system substrate: queueing models and a bounded-bandwidth
simulation that exhibits the bandwidth-wall throughput plateau."""

from .channel import ChannelRequest, OffChipChannel
from .latency_model import (
    ClosedLoopOperatingPoint,
    ClosedLoopThroughputModel,
)
from .queueing import (
    QueueModel,
    md1_waiting_time,
    mm1_waiting_time,
    saturation_throughput,
)
from .system import (
    AnalyticThroughputModel,
    BoundedBandwidthSimulation,
    CoreParameters,
    SimulatedThroughput,
)

__all__ = [
    "ChannelRequest",
    "OffChipChannel",
    "QueueModel",
    "mm1_waiting_time",
    "md1_waiting_time",
    "saturation_throughput",
    "CoreParameters",
    "AnalyticThroughputModel",
    "BoundedBandwidthSimulation",
    "SimulatedThroughput",
    "ClosedLoopThroughputModel",
    "ClosedLoopOperatingPoint",
]

"""A cycle-level off-chip channel with finite bandwidth.

Event-driven model of the shared memory link: requests arrive, wait in a
FIFO, occupy the channel for ``bytes / bytes_per_cycle`` cycles, and
complete.  Used by :mod:`repro.memory.system` to *demonstrate* (rather
than assume) the bandwidth-wall plateau: an analytical claim in the
paper's introduction that our simulation then exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ChannelRequest", "OffChipChannel"]


@dataclass
class ChannelRequest:
    """One in-flight transfer."""

    core_id: int
    num_bytes: int
    issue_cycle: float
    start_cycle: float = 0.0
    finish_cycle: float = 0.0

    @property
    def queueing_delay(self) -> float:
        return self.start_cycle - self.issue_cycle

    @property
    def latency(self) -> float:
        return self.finish_cycle - self.issue_cycle


class OffChipChannel:
    """A single FIFO-served link with fixed bytes/cycle capacity."""

    def __init__(self, bytes_per_cycle: float) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError(
                f"bytes_per_cycle must be positive, got {bytes_per_cycle}"
            )
        self.bytes_per_cycle = bytes_per_cycle
        self._free_at = 0.0
        self.completed: List[ChannelRequest] = []
        self.bytes_transferred = 0

    def submit(self, request: ChannelRequest) -> float:
        """Schedule a transfer; returns its finish cycle."""
        if request.num_bytes <= 0:
            raise ValueError(
                f"num_bytes must be positive, got {request.num_bytes}"
            )
        start = max(request.issue_cycle, self._free_at)
        duration = request.num_bytes / self.bytes_per_cycle
        request.start_cycle = start
        request.finish_cycle = start + duration
        self._free_at = request.finish_cycle
        self.completed.append(request)
        self.bytes_transferred += request.num_bytes
        return request.finish_cycle

    @property
    def mean_queueing_delay(self) -> float:
        if not self.completed:
            raise ValueError("no transfers completed")
        return sum(r.queueing_delay for r in self.completed) / len(self.completed)

    def utilisation(self, elapsed_cycles: float) -> float:
        """Fraction of elapsed time the link spent transferring."""
        if elapsed_cycles <= 0:
            raise ValueError(
                f"elapsed_cycles must be positive, got {elapsed_cycles}"
            )
        return min(1.0, (self.bytes_transferred / self.bytes_per_cycle)
                   / elapsed_cycles)

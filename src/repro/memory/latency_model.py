"""Closed-loop performance under queueing delay (the intro's mechanism).

"If the provided off-chip memory bandwidth cannot sustain the rate at
which memory requests are generated, then the extra queuing delay for
memory requests will force the performance of the cores to decline
until the rate of memory requests matches the available off-chip
bandwidth."  (Section 1.)

That sentence is a fixpoint: per-core request rate depends on memory
latency (stalls lengthen CPI), and memory latency depends on the
aggregate request rate (queueing).  :class:`ClosedLoopThroughputModel`
solves it:

    latency(rate)  = unloaded + W_q(P * rate)          (M/D/1)
    rate(latency)  = miss_rate / (1/base_ipc + miss_rate * latency)

The fixpoint always exists and is unique on (0, saturation): the
composed map rate -> rate is decreasing.  Below the wall the solution
sits at the unloaded latency; past it, latency inflates exactly enough
to pin the aggregate rate at the channel's capacity — the paper's
self-throttling, in closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .queueing import QueueModel
from .system import CoreParameters

__all__ = ["ClosedLoopOperatingPoint", "ClosedLoopThroughputModel"]


@dataclass(frozen=True)
class ClosedLoopOperatingPoint:
    """The self-consistent operating point of cores + channel."""

    num_cores: int
    memory_latency: float
    per_core_ipc: float
    per_core_request_rate: float
    channel_utilisation: float

    @property
    def chip_ipc(self) -> float:
        return self.num_cores * self.per_core_ipc


class ClosedLoopThroughputModel:
    """Fixpoint solve of the core-rate / queueing-delay feedback loop."""

    def __init__(self, core: CoreParameters, channel: QueueModel) -> None:
        if core.miss_rate <= 0:
            raise ValueError(
                "closed-loop model needs a positive miss rate"
            )
        self.core = core
        self.channel = channel

    def _ipc_at_latency(self, latency: float) -> float:
        cpi = 1.0 / self.core.base_ipc + self.core.miss_rate * latency
        return 1.0 / cpi

    def _rate_at_latency(self, latency: float) -> float:
        """Per-core requests per cycle when memory takes ``latency``."""
        return self._ipc_at_latency(latency) * self.core.miss_rate

    def operating_point(self, num_cores: int,
                        tol: float = 1e-10) -> ClosedLoopOperatingPoint:
        """Solve the fixpoint for ``num_cores`` cores.

        Bisection on the per-core rate: the residual
        ``rate - rate_at_latency(latency(rate))`` is increasing in rate.
        """
        if num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {num_cores}")
        unloaded = self.core.miss_penalty_cycles + 1.0 / (
            self.channel.service_rate
        )
        rate_hi = self._rate_at_latency(unloaded)  # best case
        # The aggregate can never exceed the channel: cap the bracket.
        rate_hi = min(rate_hi, self.channel.service_rate / num_cores
                      * (1 - 1e-9))
        rate_lo = 0.0

        def residual(rate: float) -> float:
            latency = unloaded + self.channel.queueing_delay(
                num_cores * rate
            )
            return rate - self._rate_at_latency(latency)

        # residual(rate_hi) >= 0 (queueing only slows cores down);
        # residual(0) < 0.
        lo, hi = rate_lo, rate_hi
        if residual(hi) < 0:
            rate = hi  # channel effectively unloaded even at best case
        else:
            for _ in range(200):
                mid = 0.5 * (lo + hi)
                if residual(mid) < 0:
                    lo = mid
                else:
                    hi = mid
                if hi - lo < tol:
                    break
            rate = 0.5 * (lo + hi)
        latency = unloaded + self.channel.queueing_delay(num_cores * rate)
        return ClosedLoopOperatingPoint(
            num_cores=num_cores,
            memory_latency=latency,
            per_core_ipc=self._ipc_at_latency(latency),
            per_core_request_rate=rate,
            channel_utilisation=min(
                1.0, num_cores * rate / self.channel.service_rate
            ),
        )

    def throughput_curve(self, core_counts):
        """Operating points across core counts (the wall, closed-loop)."""
        return [self.operating_point(p) for p in core_counts]

    def knee(self, max_cores: int = 1024) -> int:
        """First core count whose marginal chip-IPC gain drops below 5%
        of the single-core IPC — where the wall visibly bends."""
        if max_cores < 2:
            raise ValueError(f"max_cores must be >= 2, got {max_cores}")
        single = self.operating_point(1).chip_ipc
        previous = single
        for cores in range(2, max_cores + 1):
            current = self.operating_point(cores).chip_ipc
            if current - previous < 0.05 * single:
                return cores
            previous = current
        return max_cores

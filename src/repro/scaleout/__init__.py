"""Multi-process scale-out: pre-fork serving over a shared cache tier.

The paper's argument — aggregate throughput scales only as far as the
shared resource allows — applies to the serving stack itself.  This
package takes the single-process service and job worker horizontal:

* :mod:`repro.scaleout.shared_cache` — an sqlite(WAL)-backed cache
  tier shared by every process on one host, with the existing
  in-process caches demoted to per-process L1s over it;
* :mod:`repro.scaleout.prefork` — ``serve --processes N``: N forked
  workers accepting on a shared listening socket (``SO_REUSEPORT``
  when the platform has it, inherited-fd fallback otherwise);
* :mod:`repro.scaleout.fleet` — ``python -m repro.jobs.worker
  --processes N``: a fleet of competing lease claimers over one
  durable :class:`~repro.jobs.store.JobStore`.

See ``docs/SCALEOUT.md`` for the process model and what deliberately
stays per-process (admission control, circuit breakers, L1 caches).

:mod:`repro.scaleout.prefork` imports the service application, so it
is *not* re-exported here — import it directly to keep this package
importable from inside :mod:`repro.service.app` without a cycle.
"""

from .shared_cache import (
    SharedCacheTier,
    SharedMemoCache,
    TieredResponseCache,
    encode_key,
)

__all__ = [
    "SharedCacheTier",
    "SharedMemoCache",
    "TieredResponseCache",
    "encode_key",
]

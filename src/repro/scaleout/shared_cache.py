"""The shared cache tier: one sqlite(WAL) store under N processes.

Pre-forked service workers each carry the usual in-process caches —
the solve memo (:mod:`repro.core.memo`) and the response cache
(:mod:`repro.service.cache`) — but as **L1s** layered over one
:class:`SharedCacheTier` on disk.  A solve or rendered response
computed by any process becomes a hit for every sibling, so cache
warm-up cost is paid once per host, not once per process.

Layout
------
``entries``
    One row per cached value: ``(namespace, key, payload, stamp)``.
    Namespaces keep the two cache families (``response``, ``memo``)
    from colliding; payloads are pickled (responses carry bare NaN,
    which strict JSON would reject); ``stamp`` is wall-clock write
    time, used for TTL checks and oldest-first eviction.
``counters``
    Cross-process event counters, one row per ``(pid, name)``.  Each
    process increments its own rows (no write contention on hot
    names); readers aggregate with ``SUM`` — that aggregate is what
    ``/metrics`` exposes as ``scaleout_shared_cache_total``.

Keys
----
Cross-process keys must be *stable text*, so they are derived with
:func:`encode_key` — a SHA-256 over ``repr(key)``.  The in-process
caches key on frozen dataclasses whose ``repr`` is deterministic
everywhere; ``hash()`` is **not** usable here because string hashing
is randomized per process (``PYTHONHASHSEED``).

Fork safety
-----------
Connections are cached per thread and stamped with ``os.getpid()``,
exactly like :class:`~repro.jobs.store.JobStore`: a forked child
abandons (never closes) the handle it inherited and opens its own.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import sqlite3
import threading
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.memo import DEFAULT_MAXSIZE, MemoCache, ModelKey
from ..service.cache import ResponseCache

__all__ = [
    "RESPONSE_NAMESPACE",
    "MEMO_NAMESPACE",
    "encode_key",
    "SharedCacheTier",
    "TieredResponseCache",
    "SharedMemoCache",
]

RESPONSE_NAMESPACE = "response"
MEMO_NAMESPACE = "memo"

#: Default bound on shared response entries (mirrors the L1 default).
DEFAULT_RESPONSE_ENTRIES = 4096
#: Default bound on shared memo entries (mirrors the L1 default).
DEFAULT_MEMO_ENTRIES = DEFAULT_MAXSIZE
#: Memo writes/counter bumps buffered per process before one batched
#: transaction flushes them — per-solve write transactions would put
#: the sqlite write lock on the sweep hot path.
DEFAULT_FLUSH_THRESHOLD = 64

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    namespace TEXT NOT NULL,
    key       TEXT NOT NULL,
    payload   BLOB NOT NULL,
    stamp     REAL NOT NULL,
    PRIMARY KEY (namespace, key)
);
CREATE INDEX IF NOT EXISTS entries_stamp ON entries (namespace, stamp);
CREATE TABLE IF NOT EXISTS counters (
    pid   INTEGER NOT NULL,
    name  TEXT NOT NULL,
    value INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (pid, name)
);
"""


def encode_key(key: Any) -> str:
    """Stable cross-process cache key: SHA-256 of ``repr(key)``.

    Valid for the keys our caches actually use — tuples of strings and
    frozen dataclasses of scalars, whose ``repr`` round-trips floats
    exactly and is identical in every process.  ``hash()`` would not
    be: string hashing is per-process randomized.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class SharedCacheTier:
    """Process-shared cache store plus cross-process event counters.

    Parameters
    ----------
    cache_dir:
        Directory holding ``shared_cache.sqlite3`` (created if
        missing).  Every process of one scale-out group points here.
    clock:
        Injectable wall clock for entry stamps (tests freeze it).
        Wall time, not monotonic: stamps must be comparable across
        processes.

    Values must never be ``None`` (``None`` is the miss sentinel);
    both cache families store non-None payloads by construction.
    """

    DB_NAME = "shared_cache.sqlite3"

    def __init__(self, cache_dir: Union[str, Path], *,
                 clock: Callable[[], float] = time.time) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.cache_dir / self.DB_NAME
        self._clock = clock
        self._local = threading.local()
        with self._connection() as conn:
            conn.executescript(_SCHEMA)

    # -- connections (pid-stamped; see jobs.store.JobStore) ------------

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @contextlib.contextmanager
    def _connection(self):
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "pid", None) != pid:
            # A handle inherited across fork is abandoned, never
            # closed: sqlite API calls on it are unsafe in the child.
            conn = self._open()
            self._local.conn = conn
            self._local.pid = pid
        try:
            yield conn
            conn.commit()
        except BaseException:
            try:
                conn.rollback()
            except sqlite3.Error:
                self._local.conn = None
            raise

    def close(self) -> None:
        """Close the calling thread's handle if this process owns it."""
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid", None) \
                == os.getpid():
            conn.close()
        self._local.conn = None

    # -- entries -------------------------------------------------------

    def get(self, namespace: str, key: str, *,
            ttl: Optional[float] = None) -> Any:
        """The stored value, or ``None`` on miss or TTL expiry.

        An expired entry is deleted on the way out so dead rows do not
        accumulate under the entry bound.
        """
        with self._connection() as conn:
            row = conn.execute(
                "SELECT payload, stamp FROM entries"
                " WHERE namespace = ? AND key = ?", (namespace, key),
            ).fetchone()
            if row is None:
                return None
            if ttl is not None and self._clock() - row[1] >= ttl:
                conn.execute(
                    "DELETE FROM entries WHERE namespace = ? AND key = ?",
                    (namespace, key),
                )
                return None
        return pickle.loads(row[0])

    def get_many(self, namespace: str,
                 keys: Sequence[str]) -> Dict[str, Any]:
        """Present entries among ``keys`` (no TTL filter — memo path)."""
        if not keys:
            return {}
        found: Dict[str, Any] = {}
        with self._connection() as conn:
            # Chunk the IN list well under sqlite's default 999-variable
            # bound.
            for start in range(0, len(keys), 500):
                chunk = list(keys[start:start + 500])
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT key, payload FROM entries"
                    f" WHERE namespace = ? AND key IN ({marks})",
                    [namespace] + chunk,
                ).fetchall()
                for key, payload in rows:
                    found[key] = pickle.loads(payload)
        return found

    def put(self, namespace: str, key: str, value: Any, *,
            max_entries: Optional[int] = None) -> None:
        self.put_many(namespace, [(key, value)], max_entries=max_entries)

    def put_many(self, namespace: str,
                 items: Iterable[Tuple[str, Any]], *,
                 max_entries: Optional[int] = None) -> None:
        """Upsert a batch in one transaction, then enforce the bound.

        Eviction is oldest-stamp-first and is charged to this
        process's ``<namespace>.eviction`` counter in the same
        transaction.
        """
        rows = [(namespace, key,
                 pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
                 self._clock())
                for key, value in items]
        if not rows:
            return
        with self._connection() as conn:
            conn.executemany(
                "INSERT OR REPLACE INTO entries"
                " (namespace, key, payload, stamp) VALUES (?, ?, ?, ?)",
                rows,
            )
            if max_entries is not None:
                count = conn.execute(
                    "SELECT COUNT(*) FROM entries WHERE namespace = ?",
                    (namespace,),
                ).fetchone()[0]
                excess = count - max_entries
                if excess > 0:
                    conn.execute(
                        "DELETE FROM entries WHERE namespace = ?1"
                        " AND key IN (SELECT key FROM entries"
                        "  WHERE namespace = ?1 ORDER BY stamp"
                        "  LIMIT ?2)",
                        (namespace, excess),
                    )
                    self._bump_in(conn, {f"{namespace}.eviction": excess})

    def entry_count(self, namespace: Optional[str] = None) -> int:
        with self._connection() as conn:
            if namespace is None:
                row = conn.execute(
                    "SELECT COUNT(*) FROM entries").fetchone()
            else:
                row = conn.execute(
                    "SELECT COUNT(*) FROM entries WHERE namespace = ?",
                    (namespace,),
                ).fetchone()
        return int(row[0])

    # -- counters ------------------------------------------------------

    def bump(self, name: str, amount: int = 1) -> None:
        self.bump_many({name: amount})

    def bump_many(self, amounts: Dict[str, int]) -> None:
        """Add to this process's counter rows in one transaction."""
        amounts = {name: n for name, n in amounts.items() if n}
        if not amounts:
            return
        with self._connection() as conn:
            self._bump_in(conn, amounts)

    @staticmethod
    def _bump_in(conn: sqlite3.Connection,
                 amounts: Dict[str, int]) -> None:
        pid = os.getpid()
        conn.executemany(
            "INSERT INTO counters (pid, name, value) VALUES (?, ?, ?)"
            " ON CONFLICT(pid, name)"
            " DO UPDATE SET value = value + excluded.value",
            [(pid, name, amount) for name, amount in amounts.items()],
        )

    def counters_total(self) -> Dict[str, int]:
        """Event counters summed over every process, name → total."""
        with self._connection() as conn:
            rows = conn.execute(
                "SELECT name, SUM(value) FROM counters GROUP BY name"
            ).fetchall()
        return {name: int(total) for name, total in rows}

    def counters_by_pid(self) -> Dict[int, Dict[str, int]]:
        """Per-process counter rows, pid → {name: value}."""
        with self._connection() as conn:
            rows = conn.execute(
                "SELECT pid, name, value FROM counters"
            ).fetchall()
        by_pid: Dict[int, Dict[str, int]] = {}
        for pid, name, value in rows:
            by_pid.setdefault(int(pid), {})[name] = int(value)
        return by_pid

    def processes_seen(self) -> int:
        """Distinct pids that have recorded at least one counter."""
        with self._connection() as conn:
            row = conn.execute(
                "SELECT COUNT(DISTINCT pid) FROM counters").fetchone()
        return int(row[0])


class TieredResponseCache(ResponseCache):
    """Per-process L1 response cache over a :class:`SharedCacheTier`.

    Behaviour is the parent's — TTL+LRU, single-flight coalescing —
    except that the *compute* step first consults the shared tier:
    an L1 miss that a sibling process already computed is served from
    disk instead of re-rendered.  Fresh computations are written
    through eagerly (responses are few and large; batching buys
    nothing and risks losing minutes of work on a crash).

    Tier counters: ``response.hit`` / ``response.miss`` (tier-level,
    cross-process) and ``response.eviction`` (bound enforcement).
    """

    def __init__(self, tier: SharedCacheTier, *,
                 maxsize: int = 1024, ttl: float = 300.0,
                 clock: Callable[[], float] = time.monotonic,
                 max_shared_entries: int = DEFAULT_RESPONSE_ENTRIES
                 ) -> None:
        super().__init__(maxsize=maxsize, ttl=ttl, clock=clock)
        self.tier = tier
        self.max_shared_entries = max_shared_entries

    def get_or_compute(self, key, compute, wait_timeout=None):
        if self.ttl <= 0:
            # Caching disabled: keep in-process coalescing, skip the
            # tier (a shared entry would never be considered fresh).
            return super().get_or_compute(key, compute, wait_timeout)

        def tiered_compute():
            encoded = encode_key(key)
            value = self.tier.get(RESPONSE_NAMESPACE, encoded,
                                  ttl=self.ttl)
            if value is not None:
                self.tier.bump("response.hit")
                return value
            value = compute()
            self.tier.put(RESPONSE_NAMESPACE, encoded, value,
                          max_entries=self.max_shared_entries)
            self.tier.bump("response.miss")
            return value

        return super().get_or_compute(key, tiered_compute, wait_timeout)


class SharedMemoCache(MemoCache):
    """Per-process L1 solve memo over a :class:`SharedCacheTier`.

    Lookups go L1 → tier; a tier hit is promoted into the L1 (and
    counts as a local hit — it *was* served from the memo, just a
    sibling's).  Stores land in the L1 immediately but reach the tier
    through a write buffer flushed every ``flush_threshold`` entries,
    so the per-solve hot path never takes the cross-process write
    lock.  Call :meth:`flush` on shutdown to persist the tail.

    Tier counters (batched with the same buffer): ``memo.hit`` /
    ``memo.miss`` / ``memo.store`` and ``memo.eviction``.
    """

    def __init__(self, tier: SharedCacheTier, *,
                 maxsize: int = DEFAULT_MAXSIZE,
                 max_shared_entries: int = DEFAULT_MEMO_ENTRIES,
                 flush_threshold: int = DEFAULT_FLUSH_THRESHOLD) -> None:
        super().__init__(maxsize=maxsize)
        self.tier = tier
        self.max_shared_entries = max_shared_entries
        self.flush_threshold = flush_threshold
        self._tier_lock = threading.Lock()
        self._pending: Dict[str, Any] = {}
        self._pending_counts: Dict[str, int] = {}

    # -- lookups -------------------------------------------------------

    def lookup(self, key: ModelKey):
        values = self.lookup_many([key])
        return values[0]

    def lookup_many(self, keys: Sequence[ModelKey]):
        with self._lock:
            values: List[Any] = [self._entries.get(key) for key in keys]
            l1_hits = sum(1 for value in values if value is not None)
            self._hits += l1_hits
        missing = [index for index, value in enumerate(values)
                   if value is None]
        if not missing:
            return values
        encoded = [encode_key(keys[index]) for index in missing]
        found = self.tier.get_many(MEMO_NAMESPACE, encoded)
        tier_hits = 0
        promoted: List[Tuple[ModelKey, Any]] = []
        for index, code in zip(missing, encoded):
            value = found.get(code)
            if value is not None:
                values[index] = value
                promoted.append((keys[index], value))
                tier_hits += 1
        with self._lock:
            # Tier hits are memo hits: the solve was served from the
            # (tiered) memo, not recomputed.
            self._hits += tier_hits
            self._misses += len(missing) - tier_hits
            for key, value in promoted:
                if key not in self._entries \
                        and len(self._entries) >= self.maxsize:
                    self._entries.popitem(last=False)
                self._entries[key] = value
        self._count("memo.hit", tier_hits)
        self._count("memo.miss", len(missing) - tier_hits)
        return values

    # -- stores --------------------------------------------------------

    def store(self, key: ModelKey, value) -> None:
        self.store_many([(key, value)])

    def store_many(self, items) -> None:
        items = list(items)
        super().store_many(items)
        if not items:
            return
        with self._tier_lock:
            for key, value in items:
                self._pending[encode_key(key)] = value
            self._pending_counts["memo.store"] = \
                self._pending_counts.get("memo.store", 0) + len(items)
            drained = self._drain_if_due()
        self._write_out(drained)

    def flush(self) -> None:
        """Force the write buffer and batched counters to the tier."""
        with self._tier_lock:
            drained = self._drain()
        self._write_out(drained)

    # -- internals -----------------------------------------------------

    def _count(self, name: str, amount: int) -> None:
        if not amount:
            return
        with self._tier_lock:
            self._pending_counts[name] = \
                self._pending_counts.get(name, 0) + amount
            drained = self._drain_if_due()
        self._write_out(drained)

    def _drain_if_due(self):
        """Take the buffers when due (call with ``_tier_lock`` held)."""
        pending_events = sum(self._pending_counts.values())
        if len(self._pending) >= self.flush_threshold \
                or pending_events >= self.flush_threshold:
            return self._drain()
        return None

    def _drain(self):
        drained = (self._pending, self._pending_counts)
        self._pending = {}
        self._pending_counts = {}
        return drained

    def _write_out(self, drained) -> None:
        if drained is None:
            return
        pending, counts = drained
        if pending:
            self.tier.put_many(MEMO_NAMESPACE, pending.items(),
                               max_entries=self.max_shared_entries)
        self.tier.bump_many(counts)

"""Child-process supervision shared by pre-fork serving and the fleet.

One pattern, two users: fork N children, forward SIGTERM/SIGINT to
them, reap everything, and report whether the group ended cleanly.
The server treats a child exiting on its own as a failure (servers run
until told to stop); a ``--once`` worker fleet treats it as the normal
drained-queue exit.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Dict, Sequence, Tuple

__all__ = ["supervise"]


def supervise(pids: Sequence[int], *, exit_expected: bool,
              kill_deadline: float = 60.0) -> Tuple[Dict[int, int], bool]:
    """Babysit forked children until all are reaped.

    SIGTERM/SIGINT to the supervisor forwards SIGTERM to every live
    child; children still alive ``kill_deadline`` seconds later are
    SIGKILLed.  Returns ``(exit codes by pid, clean)`` — clean meaning
    every child exited 0 and, unless ``exit_expected``, none exited
    before a stop was requested.  The caller's signal handlers are
    restored on return.
    """
    stopping = threading.Event()
    unexpected = False
    previous = {}

    def request_stop(signum, frame) -> None:
        stopping.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, request_stop)
    codes: Dict[int, int] = {}
    forwarded = False
    kill_at = float("inf")
    try:
        while len(codes) < len(pids):
            if stopping.is_set() and not forwarded:
                for pid in pids:
                    if pid not in codes:
                        try:
                            os.kill(pid, signal.SIGTERM)
                        except ProcessLookupError:
                            pass
                forwarded = True
                kill_at = time.monotonic() + kill_deadline
            for pid in pids:
                if pid in codes:
                    continue
                done, status = os.waitpid(pid, os.WNOHANG)
                if done:
                    codes[pid] = os.waitstatus_to_exitcode(status)
                    if not exit_expected and not stopping.is_set():
                        # A server child died under us: stop the rest
                        # rather than serve at silently reduced width.
                        unexpected = True
                        stopping.set()
            if forwarded and time.monotonic() >= kill_at:
                for pid in pids:
                    if pid not in codes:
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                        _, status = os.waitpid(pid, 0)
                        codes[pid] = os.waitstatus_to_exitcode(status)
            if len(codes) < len(pids):
                stopping.wait(0.05)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    clean = not unexpected and all(code == 0 for code in codes.values())
    return codes, clean

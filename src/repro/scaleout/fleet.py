"""Horizontal job-worker fleet: N forked claimers over one JobStore.

``python -m repro.jobs.worker --state-dir D --processes N`` lands
here.  The lease protocol already makes competing claimers safe — each
``BEGIN IMMEDIATE`` lease transaction has exactly one winner — so the
fleet is deliberately thin: fork N children and let them race for
jobs.  Throughput scales with the number of *jobs*, not chunks: a
lease covers a whole job, so a fleet drains a backlog of J jobs up to
``min(N, J)``-wide.

The :class:`~repro.jobs.worker.Worker` and its store are constructed
**before** forking — exactly the pattern the fork-safety fixes exist
for, exercised on purpose: every child reopens its own sqlite
connection (pid-stamped, see ``JobStore._connection``) and claims
leases under a pid-stamped identity (``base@pid``), so pre-fork
identities can never collide across children.
"""

from __future__ import annotations

import os
import threading
import traceback
import uuid
from pathlib import Path
from typing import List, Optional, Union

from ..jobs.store import JobStore
from ..jobs.worker import Worker
from .procutil import supervise

__all__ = ["run_fleet"]


def run_fleet(state_dir: Union[str, Path], *, processes: int,
              worker_id: Optional[str] = None, lease_ttl: float = 30.0,
              poll_interval: float = 0.2, once: bool = False,
              fault_profile: Optional[str] = None) -> int:
    """Blocking fleet supervisor; returns 0 when every worker exited 0.

    SIGTERM/SIGINT drain the whole fleet: each child finishes and
    checkpoints its current chunk, releases its lease and exits.
    ``once=True`` lets each child exit as soon as it finds no
    claimable job (batch drain for benchmarks and CI).
    """
    if processes <= 0:
        raise ValueError(f"processes must be positive, got {processes}")
    from ..resilience.faultinject import (
        FaultInjector,
        faulty_execute_chunk,
        faulty_store,
        injector_from_env,
        load_profile,
    )

    store = JobStore(state_dir)
    execute_chunk = None
    if fault_profile:
        injector = FaultInjector(load_profile(fault_profile))
    else:
        injector = injector_from_env()
    if injector is not None:
        store = faulty_store(state_dir, injector)
        execute_chunk = faulty_execute_chunk(injector)
    base_id = worker_id or f"fleet-{uuid.uuid4().hex[:6]}"
    worker = Worker(
        store,
        worker_id=base_id,
        lease_ttl=lease_ttl,
        poll_interval=poll_interval,
        execute_chunk=execute_chunk,
    )
    print(f"job fleet {base_id}: {processes} workers on {state_dir}",
          flush=True)
    if injector is not None:
        print(f"FAULT INJECTION ACTIVE: profile "
              f"{injector.profile.name!r} "
              f"(seed {injector.profile.seed})", flush=True)
    pids: List[int] = []
    for _ in range(processes):
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = _fleet_child(worker, state_dir, once=once)
            except BaseException:  # noqa: BLE001 - child boundary
                traceback.print_exc()
            finally:
                os._exit(code)
        pids.append(pid)
    _, clean = supervise(pids, exit_expected=once)
    print(f"job fleet {base_id} stopped", flush=True)
    return 0 if clean else 1


def _fleet_child(worker: Worker, state_dir: Union[str, Path], *,
                 once: bool) -> int:
    import signal

    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, request_stop)
    # worker.worker_id is pid-stamped here: this child's leases are
    # owned by "<base>@<pid>", distinct from every sibling's.
    print(f"fleet worker {worker.worker_id} polling {state_dir}",
          flush=True)
    worker.run_forever(stop, once=once)
    print(f"fleet worker {worker.worker_id} stopped", flush=True)
    return 0

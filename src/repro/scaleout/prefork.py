"""Pre-fork serving: ``serve --processes N`` behind one port.

Process model
-------------
The supervisor binds the listening socket (reserving the port and
providing the fallback fd), creates the shared directories every child
needs — the durable job store and the shared cache tier — then forks
N children.  Each child prefers its **own** ``SO_REUSEPORT`` socket
bound to the same address, which lets the kernel load-balance accepts
across processes; where that is unavailable (platform without the
option, or the bind races a port reuse restriction) the child falls
back to accepting on the fd inherited from the supervisor.  The two
modes can coexist in one group: reuseport distribution includes the
inherited socket's queue.

A readiness pipe orders startup: the supervisor closes its own copy of
the listener only after every child reported its accept loop live, so
there is no window where the port is bound by nobody.

Shutdown is the single-process contract, fanned out: SIGTERM to the
supervisor forwards SIGTERM to every child; each child drains HTTP and
its job workers exactly like ``serve`` does, and the supervisor exits
0 only when every child drained cleanly.

What is shared and what is not
------------------------------
Shared per group: the listening port, the durable job store
(``state_dir``), and the :class:`~repro.scaleout.shared_cache.
SharedCacheTier` (solve memo + response store).  Per process, by
design: admission control, circuit breakers, in-flight coalescing and
the L1 caches — see docs/SCALEOUT.md for why.
"""

from __future__ import annotations

import dataclasses
import os
import select
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time
import traceback
from typing import List, Optional

from ..service.app import (
    BandwidthWallService,
    RunningService,
    ServiceConfig,
    _RequestHandler,
    _ServiceHTTPServer,
)
from .procutil import supervise

__all__ = ["create_listening_socket", "serve_prefork"]

#: Seconds the supervisor waits for every child's accept loop to come
#: up before declaring the boot failed.
READY_TIMEOUT = 60.0


def create_listening_socket(host: str, port: int, *,
                            reuseport: bool = True) -> socket.socket:
    """A bound, listening TCP socket, with ``SO_REUSEPORT`` when asked
    for and available (callers check :func:`reuseport_active`)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport and hasattr(socket, "SO_REUSEPORT"):
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except OSError:
                pass  # option exists but the kernel refuses: fall back
        sock.bind((host, port))
        sock.listen(_ServiceHTTPServer.request_queue_size)
    except BaseException:
        sock.close()
        raise
    return sock


def reuseport_active(sock: socket.socket) -> bool:
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        return bool(sock.getsockopt(socket.SOL_SOCKET,
                                    socket.SO_REUSEPORT))
    except OSError:
        return False


def serve_prefork(config: ServiceConfig) -> int:
    """Blocking supervisor for ``serve --processes N`` (N >= 2)."""
    owned_dirs: List[str] = []
    if config.state_dir is None:
        # One job store for the whole group — each child creating its
        # own temporary store would shard the queue N ways.
        owned_dirs.append(tempfile.mkdtemp(prefix="bandwidth-wall-jobs-"))
        config = dataclasses.replace(config, state_dir=owned_dirs[-1])
    if config.shared_cache_dir is None and config.fault_profile is None:
        owned_dirs.append(
            tempfile.mkdtemp(prefix="bandwidth-wall-shared-"))
        config = dataclasses.replace(config,
                                     shared_cache_dir=owned_dirs[-1])
    try:
        try:
            listener = create_listening_socket(config.host, config.port)
        except OSError as error:
            print(f"cannot bind {config.host}:{config.port}: {error}",
                  file=sys.stderr)
            return 1
        # Port 0 resolves at bind time; children must all target the
        # real port.
        config = dataclasses.replace(
            config, port=listener.getsockname()[1])
        # REPRO_SCALEOUT_NO_REUSEPORT forces the inherited-fd fallback
        # (tests exercise it on platforms where reuseport would win).
        prefer_reuseport = reuseport_active(listener) \
            and not os.environ.get("REPRO_SCALEOUT_NO_REUSEPORT")
        read_fd, write_fd = os.pipe()
        pids: List[int] = []
        for index in range(config.processes):
            pid = os.fork()
            if pid == 0:
                code = 1
                try:
                    os.close(read_fd)
                    code = _child_main(
                        config, listener, write_fd,
                        prefer_reuseport=prefer_reuseport, index=index,
                    )
                except BaseException:  # noqa: BLE001 - child boundary
                    traceback.print_exc()
                finally:
                    # Never unwind into the supervisor's stack.
                    os._exit(code)
            pids.append(pid)
        os.close(write_fd)
        print(f"bandwidth-wall service listening on "
              f"http://{config.host}:{config.port} "
              f"({config.processes} processes x {config.workers} "
              f"workers, "
              f"{'SO_REUSEPORT' if prefer_reuseport else 'inherited fd'},"
              f" shared cache {config.shared_cache_dir}, "
              f"state dir {config.state_dir})", flush=True)
        ready = _await_ready(read_fd, config.processes)
        os.close(read_fd)
        # Children accept on their own sockets (or inherited copies of
        # this fd) from here on; the supervisor's copy only kept the
        # startup window covered.
        listener.close()
        if ready < config.processes:
            print(f"only {ready}/{config.processes} workers became "
                  f"ready; aborting", file=sys.stderr)
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
            supervise(pids, exit_expected=True, kill_deadline=10.0)
            return 1
        _, clean = supervise(
            pids, exit_expected=False,
            kill_deadline=config.drain_deadline + 30.0,
        )
        print("bandwidth-wall service stopped"
              + ("" if clean else " (children exited uncleanly)"),
              flush=True)
        return 0 if clean else 1
    finally:
        for path in owned_dirs:
            shutil.rmtree(path, ignore_errors=True)


def _await_ready(read_fd: int, expected: int) -> int:
    """Count readiness bytes until ``expected``, EOF or timeout."""
    ready = 0
    deadline = time.monotonic() + READY_TIMEOUT
    while ready < expected:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        readable, _, _ = select.select([read_fd], [], [], remaining)
        if not readable:
            break
        chunk = os.read(read_fd, expected - ready)
        if not chunk:  # every write end closed: a child died unready
            break
        ready += len(chunk)
    return ready


def _child_main(config: ServiceConfig, inherited: socket.socket,
                ready_fd: int, *, prefer_reuseport: bool,
                index: int) -> int:
    """One forked worker: adopt a socket, serve, drain on SIGTERM."""
    accept_socket = inherited
    own: Optional[socket.socket] = None
    if prefer_reuseport:
        try:
            candidate = create_listening_socket(
                config.host, config.port, reuseport=True)
        except OSError:
            candidate = None  # fall back to the inherited fd
        if candidate is not None:
            if reuseport_active(candidate):
                own = candidate
                accept_socket = own
            else:
                candidate.close()
    if own is not None:
        # Closing the child's copy of the inherited fd; the socket
        # itself stays open in the supervisor and any fallback sibling.
        inherited.close()

    service = BandwidthWallService(config)
    server = _ServiceHTTPServer(
        (config.host, config.port), _RequestHandler, service,
        inherited_socket=accept_socket,
    )
    running = RunningService(service, server)

    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, request_stop)
    os.write(ready_fd, b"r")
    os.close(ready_fd)
    print(f"scale-out worker {index} (pid {os.getpid()}) accepting via "
          f"{'SO_REUSEPORT' if own is not None else 'inherited fd'}",
          flush=True)
    stop.wait()
    drained = running.drain_and_stop()
    return 0 if drained else 1

"""Compression substrate: FPC, BDI and value-cache link compression.

Real codecs (round-trip verified) whose measured ratios feed the
analytical model's ``CacheCompression`` / ``LinkCompression`` /
``CacheLinkCompression`` effectiveness factors.
"""

from . import bdi, fpc
from .link import LinkCompressor, LinkDecompressor, measure_link_ratio
from .ratios import (
    ENGINES,
    RatioReport,
    engine_by_name,
    measure_all,
    measure_cache_ratio,
)
from .system import CompressedMemorySystem

__all__ = [
    "fpc",
    "bdi",
    "LinkCompressor",
    "LinkDecompressor",
    "measure_link_ratio",
    "RatioReport",
    "measure_cache_ratio",
    "measure_all",
    "ENGINES",
    "engine_by_name",
    "CompressedMemorySystem",
]

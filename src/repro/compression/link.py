"""Value-locality link compression (Section 6.2).

Thuresson et al.'s observation: the words crossing the memory link
repeat, so keeping a small *value cache* at both ends lets the sender
transmit an index instead of the word when the value was seen recently.
Both ends update their tables identically, so no extra coherence traffic
is needed.

:class:`LinkCompressor` models one direction of the link.  Encoding per
64-bit word:

* hit — 1 flag bit + ``log2(entries)`` index bits;
* miss — 1 flag bit + the 64 raw bits (and the value is inserted).

:meth:`transfer` returns the encoded size, and the paired
:class:`LinkDecompressor` reconstructs the exact words, asserting the
two value caches stay in lock-step (tested by round-trip).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Iterable, List, Tuple

__all__ = ["LinkCompressor", "LinkDecompressor", "measure_link_ratio"]


class _ValueCache:
    """LRU table of recently transferred values, identical at both ends."""

    def __init__(self, entries: int) -> None:
        if entries < 2 or entries & (entries - 1):
            raise ValueError(
                f"entries must be a power of two >= 2, got {entries}"
            )
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self._table: "OrderedDict[int, None]" = OrderedDict()

    def lookup(self, value: int) -> int:
        """Index of ``value`` (0 = most recent), or -1 on miss."""
        if value not in self._table:
            return -1
        # Index counted from the MRU end, stable for both endpoints.
        for idx, key in enumerate(reversed(self._table)):
            if key == value:
                return idx
        raise AssertionError("unreachable")

    def value_at(self, index: int) -> int:
        for idx, key in enumerate(reversed(self._table)):
            if idx == index:
                return key
        raise IndexError(f"no value at index {index}")

    def touch(self, value: int) -> None:
        """Insert or refresh a value (both endpoints do this in step)."""
        if value in self._table:
            self._table.move_to_end(value)
        else:
            if len(self._table) >= self.entries:
                self._table.popitem(last=False)
            self._table[value] = None


class LinkCompressor:
    """Sender end of a value-cache compressed link."""

    def __init__(self, entries: int = 256, word_bytes: int = 8) -> None:
        if word_bytes not in (4, 8):
            raise ValueError(f"word_bytes must be 4 or 8, got {word_bytes}")
        self._cache = _ValueCache(entries)
        self.word_bytes = word_bytes
        self.raw_bits_sent = 0
        self.encoded_bits_sent = 0

    def _words(self, line: bytes) -> Tuple[int, ...]:
        if len(line) % self.word_bytes:
            raise ValueError(
                f"line length must be a multiple of {self.word_bytes}"
            )
        fmt = "<%d%s" % (
            len(line) // self.word_bytes,
            "Q" if self.word_bytes == 8 else "I",
        )
        return struct.unpack(fmt, line)

    def transfer(self, line: bytes) -> List[Tuple[bool, int]]:
        """Encode one line for the wire.

        Returns the token list ``[(hit, index_or_value), ...]`` and
        updates the running bit counters.
        """
        tokens: List[Tuple[bool, int]] = []
        word_bits = self.word_bytes * 8
        for word in self._words(line):
            index = self._cache.lookup(word)
            if index >= 0:
                tokens.append((True, index))
                self.encoded_bits_sent += 1 + self._cache.index_bits
            else:
                tokens.append((False, word))
                self.encoded_bits_sent += 1 + word_bits
            self._cache.touch(word)
            self.raw_bits_sent += word_bits
        return tokens

    @property
    def achieved_ratio(self) -> float:
        """Raw over encoded bits so far."""
        if self.encoded_bits_sent == 0:
            raise ValueError("nothing transferred yet")
        return self.raw_bits_sent / self.encoded_bits_sent


class LinkDecompressor:
    """Receiver end; must see the same token stream in the same order."""

    def __init__(self, entries: int = 256, word_bytes: int = 8) -> None:
        self._cache = _ValueCache(entries)
        self.word_bytes = word_bytes

    def receive(self, tokens: Iterable[Tuple[bool, int]]) -> bytes:
        """Decode one line's tokens back to raw bytes."""
        words: List[int] = []
        for hit, payload in tokens:
            value = self._cache.value_at(payload) if hit else payload
            self._cache.touch(value)
            words.append(value)
        fmt = "<%d%s" % (len(words), "Q" if self.word_bytes == 8 else "I")
        return struct.pack(fmt, *words)


def measure_link_ratio(
    lines: Iterable[bytes], entries: int = 256, word_bytes: int = 8
) -> float:
    """Compression ratio a value-cache link achieves on a line stream.

    >>> measure_link_ratio([bytes(64)] * 10) > 4
    True
    """
    compressor = LinkCompressor(entries=entries, word_bytes=word_bytes)
    decompressor = LinkDecompressor(entries=entries, word_bytes=word_bytes)
    for line in lines:
        tokens = compressor.transfer(line)
        if decompressor.receive(tokens) != line:
            raise AssertionError("link endpoints diverged")
    return compressor.achieved_ratio

"""Cache + link compression, end to end (Section 6.3's "CC/LC").

The paper's dual technique stores link-compressed data compressed in
the cache too, so one ratio both inflates capacity and deflates
traffic.  :class:`CompressedMemorySystem` wires the substrates together
and *measures* both halves on one run:

* a :class:`~repro.cache.compressed.CompressedCache` holds lines at
  their FPC size (each line's contents come from a synthetic value
  stream, deterministic per line address);
* every fill and write-back crosses a
  :class:`~repro.compression.link.LinkCompressor` /
  :class:`~repro.compression.link.LinkDecompressor` pair, verified
  lossless as it goes;

``measured_capacity_factor`` and ``measured_link_ratio`` are the two
numbers the analytical :class:`~repro.core.techniques
.CacheLinkCompression` technique abstracts into one.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..cache.compressed import CompressedCache
from ..workloads.address_stream import MemoryAccess
from ..workloads.values import ValueGenerator, ValueMix
from .fpc import compressed_size_bytes
from .link import LinkCompressor, LinkDecompressor

__all__ = ["CompressedMemorySystem"]


class _LineContentStore:
    """Deterministic line contents: one value-generated line per address,
    cached so the compressor and the link see identical bytes."""

    def __init__(self, values: ValueGenerator, line_bytes: int) -> None:
        self._values = values
        self._line_bytes = line_bytes
        self._contents: Dict[int, bytes] = {}

    def line(self, line_address: int) -> bytes:
        data = self._contents.get(line_address)
        if data is None:
            data = self._values.line(self._line_bytes)
            self._contents[line_address] = data
        return data


class CompressedMemorySystem:
    """A compressed L2 fed through a compressed off-chip link."""

    def __init__(
        self,
        cache_bytes: int,
        value_mix: ValueMix,
        line_bytes: int = 64,
        associativity: int = 8,
        tag_factor: int = 2,
        link_entries: int = 256,
        seed: int = 0,
    ) -> None:
        self._store = _LineContentStore(
            ValueGenerator(value_mix, seed=seed), line_bytes
        )
        self.line_bytes = line_bytes

        store = self._store

        class _FPCSizer:
            def compressed_size(self, line_address: int) -> int:
                return compressed_size_bytes(store.line(line_address))

        self.cache = CompressedCache(
            size_bytes=cache_bytes,
            compressor=_FPCSizer(),
            line_bytes=line_bytes,
            associativity=associativity,
            tag_factor=tag_factor,
        )
        self._tx = LinkCompressor(entries=link_entries)
        self._rx = LinkDecompressor(entries=link_entries)

    def access(self, address: int, is_write: bool = False) -> bool:
        """One processor access; returns True on a cache hit.

        A miss transfers the line's contents over the compressed link
        (and asserts losslessness); a dirty eviction transfers the
        victim back the other way, modelled with the same codec state.
        """
        result = self.cache.access(address, is_write=is_write)
        if result.miss:
            line_address = address // self.line_bytes
            data = self._store.line(line_address)
            tokens = self._tx.transfer(data)
            if self._rx.receive(tokens) != data:
                raise AssertionError("link endpoints diverged")
            if result.evicted is not None and result.writeback:
                victim = self._store.line(result.evicted.line_addr)
                self._rx.receive(self._tx.transfer(victim))
        return result.hit

    # ------------------------------------------------------------------
    # The two measured factors
    # ------------------------------------------------------------------

    @property
    def measured_capacity_factor(self) -> float:
        """Effective cache capacity over raw budget (the indirect half)."""
        return self.cache.effective_capacity_ratio

    @property
    def measured_link_ratio(self) -> float:
        """Raw over transferred bits on the link (the direct half)."""
        return self._tx.achieved_ratio

    @property
    def miss_rate(self) -> float:
        return self.cache.stats.miss_rate

    def run(self, stream: Iterable[MemoryAccess]) -> "CompressedMemorySystem":
        """Drive the system with an address stream; returns self."""
        for access in stream:
            self.access(access.address, is_write=access.is_write)
        return self

"""Frequent Pattern Compression (FPC) — the cache-compression engine.

Alameldeen & Wood's significance-based scheme: each 32-bit word is
encoded as a 3-bit prefix naming one of eight frequent patterns plus the
minimal payload for that pattern.  The patterns (and payload widths):

====== ============================================== ========
prefix pattern                                        payload
====== ============================================== ========
000    run of zero words (run length up to 8)         3 bits
001    4-bit sign-extended integer                    4 bits
010    8-bit sign-extended integer                    8 bits
011    16-bit sign-extended integer                   16 bits
100    16-bit zero-padded (low half zero)             16 bits
101    two sign-extended bytes in the halfwords       16 bits
110    word of one repeated byte                      8 bits
111    uncompressed word                              32 bits
====== ============================================== ========

The implementation is a *real* codec: :func:`compress` emits a token
stream, :func:`decompress` reconstructs the exact input, and the tests
assert the round-trip.  :func:`compressed_size_bytes` is what the cache
and link models consume.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "FPCToken",
    "compress",
    "decompress",
    "compressed_size_bits",
    "compressed_size_bytes",
    "compression_ratio",
]

_PREFIX_BITS = 3
_WORD_BITS = 32
_MAX_ZERO_RUN = 8


@dataclass(frozen=True)
class FPCToken:
    """One encoded token: pattern prefix, payload value, payload width."""

    prefix: int
    payload: int
    payload_bits: int

    @property
    def bits(self) -> int:
        return _PREFIX_BITS + self.payload_bits


def _sign_extends(value: int, bits: int) -> bool:
    """True if the 32-bit ``value`` is a ``bits``-bit sign-extended int."""
    signed = value - (1 << _WORD_BITS) if value >> (_WORD_BITS - 1) else value
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= signed <= hi


def _encode_word(word: int) -> FPCToken:
    """Choose the cheapest single-word pattern (zero runs handled above)."""
    if _sign_extends(word, 4):
        return FPCToken(0b001, word & 0xF, 4)
    if _sign_extends(word, 8):
        return FPCToken(0b010, word & 0xFF, 8)
    if _sign_extends(word, 16):
        return FPCToken(0b011, word & 0xFFFF, 16)
    if word & 0xFFFF == 0:
        return FPCToken(0b100, word >> 16, 16)
    low, high = word & 0xFFFF, word >> 16
    if _is_sign_extended_byte_halfword(low) and _is_sign_extended_byte_halfword(high):
        return FPCToken(0b101, (high & 0xFF) << 8 | (low & 0xFF), 16)
    first_byte = word & 0xFF
    if word == int.from_bytes(bytes([first_byte]) * 4, "little"):
        return FPCToken(0b110, first_byte, 8)
    return FPCToken(0b111, word, 32)


def _is_sign_extended_byte_halfword(half: int) -> bool:
    signed = half - (1 << 16) if half >> 15 else half
    return -128 <= signed <= 127


def compress(line: bytes) -> List[FPCToken]:
    """Encode a line (any multiple of 4 bytes) into FPC tokens."""
    if len(line) % 4:
        raise ValueError(f"line length must be a multiple of 4, got {len(line)}")
    words = struct.unpack("<%dI" % (len(line) // 4), line)
    tokens: List[FPCToken] = []
    i = 0
    while i < len(words):
        if words[i] == 0:
            run = 1
            while (
                i + run < len(words)
                and words[i + run] == 0
                and run < _MAX_ZERO_RUN
            ):
                run += 1
            tokens.append(FPCToken(0b000, run - 1, 3))
            i += run
        else:
            tokens.append(_encode_word(words[i]))
            i += 1
    return tokens


def _decode_token(token: FPCToken) -> List[int]:
    if token.prefix == 0b000:
        return [0] * (token.payload + 1)
    if token.prefix == 0b001:
        value = token.payload
        if value & 0x8:
            value |= 0xFFFFFFF0
        return [value]
    if token.prefix == 0b010:
        value = token.payload
        if value & 0x80:
            value |= 0xFFFFFF00
        return [value]
    if token.prefix == 0b011:
        value = token.payload
        if value & 0x8000:
            value |= 0xFFFF0000
        return [value]
    if token.prefix == 0b100:
        return [token.payload << 16]
    if token.prefix == 0b101:
        low_byte = token.payload & 0xFF
        high_byte = token.payload >> 8
        low = low_byte | (0xFF00 if low_byte & 0x80 else 0)
        high = high_byte | (0xFF00 if high_byte & 0x80 else 0)
        return [low | high << 16]
    if token.prefix == 0b110:
        return [int.from_bytes(bytes([token.payload]) * 4, "little")]
    if token.prefix == 0b111:
        return [token.payload]
    raise ValueError(f"invalid FPC prefix {token.prefix:#05b}")


def decompress(tokens: List[FPCToken]) -> bytes:
    """Exact inverse of :func:`compress`."""
    words: List[int] = []
    for token in tokens:
        words.extend(w & 0xFFFFFFFF for w in _decode_token(token))
    return struct.pack("<%dI" % len(words), *words)


def compressed_size_bits(line: bytes) -> int:
    """Encoded size of a line, in bits."""
    return sum(token.bits for token in compress(line))


def compressed_size_bytes(line: bytes) -> int:
    """Encoded size rounded up to whole bytes (what a cache would store),
    never larger than the uncompressed line."""
    size = (compressed_size_bits(line) + 7) // 8
    return min(size, len(line))


def compression_ratio(line: bytes) -> float:
    """Uncompressed over compressed size for one line."""
    return len(line) / compressed_size_bytes(line)

"""Base-Delta-Immediate (BDI) compression — an alternate cache engine.

BDI exploits *value locality within a line*: if all k-byte chunks of a
line are close to a common base (or to zero), the line is stored as one
base plus small deltas.  We implement the standard encoder menu:

* ``zeros`` — the all-zero line (1 byte of metadata),
* ``repeat`` — one repeated 8-byte value (8 bytes + metadata),
* ``base{8,4,2}-delta{1,2,4}`` — base of b bytes, per-chunk deltas of d
  bytes, with an immediate (base 0) mask so a line can mix small
  absolute values and near-base values.

:func:`compress` returns an encoding record that :func:`decompress`
inverts exactly; the size helpers feed the cache/link models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "BDIEncoding",
    "compress",
    "decompress",
    "compressed_size_bytes",
    "compression_ratio",
]

#: (base_bytes, delta_bytes) encoder menu, best-first is decided by size.
_MENU: Tuple[Tuple[int, int], ...] = (
    (8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1),
)

_METADATA_BYTES = 1  # encoding selector


@dataclass(frozen=True)
class BDIEncoding:
    """One encoded line."""

    scheme: str  # "zeros" | "repeat" | "uncompressed" | "b{b}d{d}"
    line_bytes: int
    base: int = 0
    base_bytes: int = 0
    delta_bytes: int = 0
    #: Per-chunk deltas (signed) and immediate flags (True = delta from 0).
    deltas: Tuple[int, ...] = ()
    immediates: Tuple[bool, ...] = ()
    raw: bytes = b""

    @property
    def size_bytes(self) -> int:
        if self.scheme == "zeros":
            return _METADATA_BYTES
        if self.scheme == "repeat":
            return _METADATA_BYTES + 8
        if self.scheme == "uncompressed":
            return self.line_bytes
        chunks = self.line_bytes // self.base_bytes
        mask_bytes = (chunks + 7) // 8
        return (
            _METADATA_BYTES
            + self.base_bytes
            + mask_bytes
            + chunks * self.delta_bytes
        )


def _chunks(line: bytes, size: int) -> List[int]:
    return [
        int.from_bytes(line[i: i + size], "little")
        for i in range(0, len(line), size)
    ]


def _fits_signed(value: int, nbytes: int) -> bool:
    bound = 1 << (8 * nbytes - 1)
    return -bound <= value < bound


def _try_base_delta(
    line: bytes, base_bytes: int, delta_bytes: int
) -> Optional[BDIEncoding]:
    values = _chunks(line, base_bytes)
    base = next((v for v in values if v != 0), 0)
    deltas: List[int] = []
    immediates: List[bool] = []
    for value in values:
        from_zero = value if not value >> (8 * base_bytes - 1) else (
            value - (1 << (8 * base_bytes))
        )
        from_base = value - base
        if _fits_signed(from_zero, delta_bytes):
            deltas.append(from_zero)
            immediates.append(True)
        elif _fits_signed(from_base, delta_bytes):
            deltas.append(from_base)
            immediates.append(False)
        else:
            return None
    return BDIEncoding(
        scheme=f"b{base_bytes}d{delta_bytes}",
        line_bytes=len(line),
        base=base,
        base_bytes=base_bytes,
        delta_bytes=delta_bytes,
        deltas=tuple(deltas),
        immediates=tuple(immediates),
    )


def compress(line: bytes) -> BDIEncoding:
    """Pick the smallest applicable BDI encoding for a line."""
    if not line or len(line) % 8:
        raise ValueError(
            f"line length must be a positive multiple of 8, got {len(line)}"
        )
    if line == bytes(len(line)):
        return BDIEncoding(scheme="zeros", line_bytes=len(line))
    best: Optional[BDIEncoding] = None
    first8 = line[:8]
    if line == first8 * (len(line) // 8):
        best = BDIEncoding(
            scheme="repeat",
            line_bytes=len(line),
            base=int.from_bytes(first8, "little"),
        )
    for base_bytes, delta_bytes in _MENU:
        if len(line) % base_bytes:
            continue
        candidate = _try_base_delta(line, base_bytes, delta_bytes)
        if candidate and (best is None or candidate.size_bytes < best.size_bytes):
            best = candidate
    if best is not None and best.size_bytes < len(line):
        return best
    return BDIEncoding(scheme="uncompressed", line_bytes=len(line), raw=line)


def decompress(encoding: BDIEncoding) -> bytes:
    """Exact inverse of :func:`compress`."""
    n = encoding.line_bytes
    if encoding.scheme == "zeros":
        return bytes(n)
    if encoding.scheme == "repeat":
        return encoding.base.to_bytes(8, "little") * (n // 8)
    if encoding.scheme == "uncompressed":
        return encoding.raw
    mask = (1 << (8 * encoding.base_bytes)) - 1
    out = bytearray()
    for delta, immediate in zip(encoding.deltas, encoding.immediates):
        reference = 0 if immediate else encoding.base
        out += ((reference + delta) & mask).to_bytes(
            encoding.base_bytes, "little"
        )
    return bytes(out)


def compressed_size_bytes(line: bytes) -> int:
    """Stored size under the best BDI encoding."""
    return compress(line).size_bytes


def compression_ratio(line: bytes) -> float:
    """Uncompressed over compressed size for one line."""
    return len(line) / compressed_size_bytes(line)

"""Measured compression ratios: the bridge from engines to model inputs.

The analytical model's compression techniques take a single
*effectiveness factor*.  This module computes that factor by running a
real engine (FPC, BDI, or the value-cache link codec) over a stream of
synthetic lines, and reports the paper-relevant aggregate: total
uncompressed bytes over total compressed bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from . import bdi, fpc
from .link import measure_link_ratio

__all__ = ["RatioReport", "measure_cache_ratio", "ENGINES", "engine_by_name"]


@dataclass(frozen=True)
class RatioReport:
    """Aggregate compression measurement over a line stream."""

    engine: str
    lines: int
    uncompressed_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """The effectiveness factor for the analytical model."""
        if self.compressed_bytes == 0:
            raise ValueError("no data measured")
        return self.uncompressed_bytes / self.compressed_bytes


def measure_cache_ratio(
    lines: Iterable[bytes],
    size_fn: Callable[[bytes], int],
    engine_name: str = "custom",
) -> RatioReport:
    """Measure an engine (given its per-line size function) on a stream."""
    count = 0
    raw = 0
    stored = 0
    for line in lines:
        count += 1
        raw += len(line)
        stored += size_fn(line)
    if count == 0:
        raise ValueError("empty line stream")
    return RatioReport(
        engine=engine_name,
        lines=count,
        uncompressed_bytes=raw,
        compressed_bytes=stored,
    )


#: Named engines usable from experiments and the CLI.
ENGINES = {
    "fpc": fpc.compressed_size_bytes,
    "bdi": bdi.compressed_size_bytes,
}


def engine_by_name(name: str) -> Callable[[bytes], int]:
    """Look up a cache-compression engine's size function.

    >>> engine_by_name("fpc")(bytes(64))
    2
    """
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        ) from None


def measure_all(lines_factory: Callable[[], Iterable[bytes]]) -> dict:
    """Measure FPC, BDI and the link codec on (fresh copies of) a stream.

    ``lines_factory`` is called once per engine so each sees the same
    data from the start.
    """
    results = {}
    for name, size_fn in ENGINES.items():
        results[name] = measure_cache_ratio(
            lines_factory(), size_fn, engine_name=name
        ).ratio
    results["link"] = measure_link_ratio(lines_factory())
    return results

"""Design-space optimizer: Pareto search over the technique space.

Inverts the paper's forward question ("how many cores does this
technique stack support?") into a search: given area, bandwidth and
alpha constraints, find the Pareto-optimal technique configurations
over supportable cores (maximised), cache die fraction and off-chip
traffic (both minimised).  See ``docs/OPTIMIZER.md``.
"""

from .pareto import OBJECTIVES, dominates, merge_frontiers, \
    objective_key, pareto_frontier
from .search import (
    AUTO_STRATEGY,
    DEFAULT_GENERATIONS,
    DEFAULT_POPULATION,
    EVOLUTIONARY_STRATEGY,
    EXHAUSTIVE_LIMIT,
    EXHAUSTIVE_STRATEGY,
    STRATEGIES,
    OptimizeParams,
    assemble_optimize_artifact,
    execute_optimize_chunk,
    optimize_chunk_count,
    resolve_strategy,
    run_search,
)
from .space import DIMENSION_NAMES, Dimension, SearchSpace, default_space

__all__ = [
    "AUTO_STRATEGY",
    "DEFAULT_GENERATIONS",
    "DEFAULT_POPULATION",
    "DIMENSION_NAMES",
    "Dimension",
    "EVOLUTIONARY_STRATEGY",
    "EXHAUSTIVE_LIMIT",
    "EXHAUSTIVE_STRATEGY",
    "OBJECTIVES",
    "OptimizeParams",
    "STRATEGIES",
    "SearchSpace",
    "assemble_optimize_artifact",
    "default_space",
    "dominates",
    "execute_optimize_chunk",
    "merge_frontiers",
    "objective_key",
    "optimize_chunk_count",
    "pareto_frontier",
    "resolve_strategy",
    "run_search",
]

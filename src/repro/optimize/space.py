"""The design-space model: which knobs the optimizer may turn.

A :class:`SearchSpace` is an ordered tuple of :class:`Dimension`\\ s,
each a named, discretised axis derived from the paper's technique
catalogue (:mod:`repro.core.techniques`).  A *configuration* is a tuple
of value indices, one per dimension, in dimension order — the index
tuple (not the float values) is the canonical identity of a point, so
ties, sorting and golden artifacts are exact regardless of float
formatting.

Dimensions and their neutral (technique-off) values:

================== ============================== ========================
dimension          default values                 technique
================== ============================== ========================
cache_compression  1, 1.25, 2, 3.5                CC (Table 2 ratios)
link_compression   1, 1.25, 2, 3.5                LC (Table 2 ratios)
dram_density       1, 4, 8, 16                    DRAM (Table 2 densities)
stacked_layers     0, 1                           3D (SRAM layer)
line_unused        0, 0.1, 0.4, 0.8               SmCl (unused fraction)
filter_unused      0, 0.1, 0.4, 0.8               Fltr (unused fraction)
core_area_fraction 1, 1/9, 1/40, 1/80             SmCo (relative core area)
sharing_fraction   0, 0.2, 0.5, 0.8               shared-data traffic model
================== ============================== ========================

Validity constraint: ``filter_unused`` and ``line_unused`` both model
the exploitation of never-referenced words, so a configuration enabling
both is rejected (the paper never pairs them either — Fltr appears in
Figure 16 combos only where SmCl/Sect do not).

``sharing_fraction`` is not a Table 2 technique; it folds the
data-sharing model of Section 4 (Equation 13/14) into a traffic factor
using the large-``P`` limit: shared-cache traffic is no-sharing traffic
times ``(P'/P)^(1+alpha)`` with ``P' = f + (1-f)P``, which tends to
``(1-f)^(1+alpha)`` as ``P`` grows.  Representing that as a constant
``traffic_factor = (1-f)^-(1+alpha)`` (computed at the request's alpha)
keeps every configuration solvable by the closed bandwidth-wall kernel;
the approximation overstates the benefit at small core counts and is
exact in the limit — see ``docs/OPTIMIZER.md`` for the error bound.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, \
    Tuple

from ..core.techniques import (
    CacheCompression,
    DRAMCache,
    LinkCompression,
    SmallCacheLines,
    SmallerCores,
    TechniqueEffect,
    UnusedDataFiltering,
)

__all__ = [
    "Dimension",
    "SearchSpace",
    "DIMENSION_NAMES",
    "default_space",
]

#: Canonical dimension order; configurations are index tuples in this
#: order and every serialisation lists dimensions this way.
DIMENSION_NAMES: Tuple[str, ...] = (
    "cache_compression",
    "link_compression",
    "dram_density",
    "stacked_layers",
    "line_unused",
    "filter_unused",
    "core_area_fraction",
    "sharing_fraction",
)

_DEFAULT_VALUES: Dict[str, Tuple[float, ...]] = {
    "cache_compression": (1.0, 1.25, 2.0, 3.5),
    "link_compression": (1.0, 1.25, 2.0, 3.5),
    "dram_density": (1.0, 4.0, 8.0, 16.0),
    "stacked_layers": (0.0, 1.0),
    "line_unused": (0.0, 0.1, 0.4, 0.8),
    "filter_unused": (0.0, 0.1, 0.4, 0.8),
    "core_area_fraction": (1.0, 1.0 / 9.0, 1.0 / 40.0, 1.0 / 80.0),
    "sharing_fraction": (0.0, 0.2, 0.5, 0.8),
}

#: Neutral (technique-off) value per dimension.  Every dimension must
#: include its neutral value so the baseline configuration is always in
#: the space and mutation repair has a well-defined "off" index.
_NEUTRAL: Dict[str, float] = {
    "cache_compression": 1.0,
    "link_compression": 1.0,
    "dram_density": 1.0,
    "stacked_layers": 0.0,
    "line_unused": 0.0,
    "filter_unused": 0.0,
    "core_area_fraction": 1.0,
    "sharing_fraction": 0.0,
}


def _check_values(name: str, values: Sequence[float]) -> Tuple[float, ...]:
    """Validate and canonicalise one dimension's value list."""
    if not values:
        raise ValueError(f"dimension {name!r} needs at least one value")
    cleaned: List[float] = []
    for value in values:
        v = float(value)
        if not math.isfinite(v):
            raise ValueError(f"dimension {name!r} has non-finite value {v}")
        if name in ("cache_compression", "link_compression", "dram_density"):
            if v < 1.0:
                raise ValueError(
                    f"dimension {name!r} values must be >= 1, got {v}"
                )
        elif name == "stacked_layers":
            if v != int(v) or not 0 <= v <= 4:
                raise ValueError(
                    f"dimension {name!r} values must be integers in "
                    f"[0, 4], got {v}"
                )
        elif name in ("line_unused", "filter_unused", "sharing_fraction"):
            if not 0.0 <= v < 1.0:
                raise ValueError(
                    f"dimension {name!r} values must be in [0, 1), got {v}"
                )
        elif name == "core_area_fraction":
            if not 0.0 < v <= 1.0:
                raise ValueError(
                    f"dimension {name!r} values must be in (0, 1], got {v}"
                )
        cleaned.append(v)
    # Ascending order with duplicates dropped: the stored spec is
    # canonical, so two requests describing the same space plan the
    # same chunks and produce the same artifact bytes.
    unique = sorted(set(cleaned))
    if _NEUTRAL[name] not in unique:
        unique = sorted(unique + [_NEUTRAL[name]])
    return tuple(unique)


@dataclass(frozen=True)
class Dimension:
    """One discretised axis of the search space."""

    name: str
    values: Tuple[float, ...]

    @property
    def neutral_index(self) -> int:
        return self.values.index(_NEUTRAL[self.name])


@dataclass(frozen=True)
class SearchSpace:
    """An ordered product of :class:`Dimension` value lists.

    Examples
    --------
    >>> space = default_space()
    >>> space.size
    32768
    >>> space.valid_count()
    14336
    >>> space.config_values(space.baseline_config())["dram_density"]
    1.0
    """

    dimensions: Tuple[Dimension, ...]

    def __post_init__(self) -> None:
        names = tuple(d.name for d in self.dimensions)
        if names != DIMENSION_NAMES:
            raise ValueError(
                f"dimensions must be exactly {list(DIMENSION_NAMES)} in "
                f"order, got {list(names)}"
            )

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, overrides: Optional[Mapping[str, Sequence[float]]]
              = None) -> "SearchSpace":
        """The default space, with named dimensions optionally replaced.

        An override pins a dimension to a custom value list (a single
        value freezes it); unknown names raise.
        """
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(DIMENSION_NAMES))
        if unknown:
            raise ValueError(
                f"unknown dimension(s) {unknown}; choose from "
                f"{list(DIMENSION_NAMES)}"
            )
        dims = tuple(
            Dimension(name, _check_values(
                name, overrides.get(name, _DEFAULT_VALUES[name])))
            for name in DIMENSION_NAMES
        )
        return cls(dimensions=dims)

    # -- geometry ------------------------------------------------------

    @property
    def size(self) -> int:
        """Total configurations, valid or not."""
        product = 1
        for dim in self.dimensions:
            product *= len(dim.values)
        return product

    def baseline_config(self) -> Tuple[int, ...]:
        """The all-techniques-off configuration."""
        return tuple(d.neutral_index for d in self.dimensions)

    def is_valid(self, config: Sequence[int]) -> bool:
        """Whether an index tuple satisfies the validity constraints."""
        values = self.config_values(config)
        # Fltr and SmCl both monetise unused words; enabling both would
        # double-count the same capacity headroom.
        return not (values["filter_unused"] > 0.0
                    and values["line_unused"] > 0.0)

    def repair(self, config: Sequence[int]) -> Tuple[int, ...]:
        """Nearest valid configuration: switch ``line_unused`` off.

        Deterministic by construction — the only constraint is the
        Fltr/SmCl exclusion, and repair always yields to Fltr.
        """
        config = tuple(config)
        if self.is_valid(config):
            return config
        fixed = list(config)
        fixed[DIMENSION_NAMES.index("line_unused")] = \
            self.dimensions[DIMENSION_NAMES.index("line_unused")] \
            .neutral_index
        return tuple(fixed)

    def enumerate_valid(self) -> Iterator[Tuple[int, ...]]:
        """All valid configurations in lexicographic index order."""
        ranges = [range(len(d.values)) for d in self.dimensions]
        for config in itertools.product(*ranges):
            if self.is_valid(config):
                yield config

    def valid_count(self) -> int:
        """Number of valid configurations (full product minus the
        Fltr x SmCl exclusion block)."""
        fltr = self.dimensions[DIMENSION_NAMES.index("filter_unused")]
        smcl = self.dimensions[DIMENSION_NAMES.index("line_unused")]
        fltr_on = sum(1 for v in fltr.values if v > 0.0)
        smcl_on = sum(1 for v in smcl.values if v > 0.0)
        rest = 1
        for dim in self.dimensions:
            if dim.name not in ("filter_unused", "line_unused"):
                rest *= len(dim.values)
        return self.size - rest * fltr_on * smcl_on

    # -- interpretation ------------------------------------------------

    def check_config(self, config: Sequence[int]) -> Tuple[int, ...]:
        config = tuple(config)
        if len(config) != len(self.dimensions):
            raise ValueError(
                f"config must have {len(self.dimensions)} indices, "
                f"got {len(config)}"
            )
        for index, dim in zip(config, self.dimensions):
            if not 0 <= index < len(dim.values):
                raise ValueError(
                    f"index {index} out of range for dimension "
                    f"{dim.name!r} with {len(dim.values)} values"
                )
        return config

    def config_values(self, config: Sequence[int]) -> Dict[str, float]:
        """Index tuple -> ``{dimension name: value}`` mapping."""
        config = self.check_config(config)
        return {dim.name: dim.values[index]
                for dim, index in zip(self.dimensions, config)}

    def effect(self, config: Sequence[int],
               alpha: float) -> Tuple[TechniqueEffect, Tuple[str, ...]]:
        """Fold a configuration into a single :class:`TechniqueEffect`.

        Returns the combined effect plus human-readable labels for the
        enabled techniques (paper abbreviations).  ``alpha`` enters only
        through the sharing-fraction traffic factor.
        """
        values = self.config_values(config)
        if not self.is_valid(config):
            raise ValueError(
                "invalid configuration: filter_unused and line_unused "
                "cannot both be enabled"
            )
        effect = TechniqueEffect()
        labels: List[str] = []
        if values["cache_compression"] > 1.0:
            ratio = values["cache_compression"]
            effect = effect.combine(CacheCompression(ratio).effect())
            labels.append(f"CC={ratio:g}")
        if values["link_compression"] > 1.0:
            ratio = values["link_compression"]
            effect = effect.combine(LinkCompression(ratio).effect())
            labels.append(f"LC={ratio:g}")
        if values["dram_density"] > 1.0:
            density = values["dram_density"]
            effect = effect.combine(DRAMCache(density).effect())
            labels.append(f"DRAM={density:g}")
        layers = int(values["stacked_layers"])
        if layers >= 1:
            # Multi-layer stacks generalise ThreeDStackedCache (which
            # pins stacked_layers=1); the stacked die stays SRAM and
            # inherits DRAM density via resolved_stacked_density.
            effect = effect.combine(
                TechniqueEffect(stacked_layers=layers))
            labels.append("3D" if layers == 1 else f"3D={layers}")
        if values["line_unused"] > 0.0:
            fraction = values["line_unused"]
            effect = effect.combine(SmallCacheLines(fraction).effect())
            labels.append(f"SmCl={fraction:g}")
        if values["filter_unused"] > 0.0:
            fraction = values["filter_unused"]
            effect = effect.combine(UnusedDataFiltering(fraction).effect())
            labels.append(f"Fltr={fraction:g}")
        if values["core_area_fraction"] < 1.0:
            fraction = values["core_area_fraction"]
            effect = effect.combine(SmallerCores(fraction).effect())
            labels.append(f"SmCo={fraction:g}")
        if values["sharing_fraction"] > 0.0:
            fraction = values["sharing_fraction"]
            # Large-P limit of Eq 13: traffic scales by (1-f)^(1+alpha).
            factor = (1.0 - fraction) ** -(1.0 + alpha)
            effect = effect.combine(TechniqueEffect(traffic_factor=factor))
            labels.append(f"share={fraction:g}")
        return effect, tuple(labels)

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, List[float]]:
        """JSON-ready ``{name: [values]}`` in canonical order."""
        return {dim.name: list(dim.values) for dim in self.dimensions}

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]
                  ) -> "SearchSpace":
        """Inverse of :meth:`to_dict`; None or {} means the default."""
        if not payload:
            return cls.build()
        return cls.build(payload)

    def to_items(self) -> Tuple[Tuple[str, Tuple[float, ...]], ...]:
        """Hashable form for embedding in a frozen JobSpec."""
        return tuple((dim.name, dim.values) for dim in self.dimensions)

    @classmethod
    def from_items(cls, items: Sequence[Tuple[str, Sequence[float]]]
                   ) -> "SearchSpace":
        if not items:
            return cls.build()
        return cls.build({name: tuple(values) for name, values in items})


def default_space() -> SearchSpace:
    """The full eight-dimension Table 2 space."""
    return SearchSpace.build()

"""Search strategies: exhaustive enumeration and evolutionary search.

Both strategies evaluate configurations through
:meth:`~repro.core.scaling.BandwidthWallModel.supportable_cores_batch`
(the vectorized kernel) and prune with the deterministic Pareto engine
(:mod:`repro.optimize.pareto`).  Everything here is a **pure function
of the request parameters** — no wall clock, no global RNG — which is
the property the durable-jobs layer leans on:

* **exhaustive** — valid configurations in lexicographic index order,
  sliced into chunks of ``chunk_size``; each chunk's payload carries
  its chunk-local frontier, and assembly merges them (equal to one
  global frontier by dominance transitivity).
* **evolutionary** — generation ``k`` is chunk ``k``.  A generation's
  population depends on its predecessor, so
  :func:`execute_optimize_chunk` *replays* generations ``0..k`` from
  the seed (recompute-prefix).  Per-generation RNG is
  ``random.Random(seed * 1_000_003 + generation)`` — no RNG state is
  carried across chunks, so replay from any point is exact.  Re-solves
  during replay hit the solve memo and the chunk payload is a full
  snapshot (cumulative frontier + counters), so a crash-resumed job
  reproduces the identical artifact bytes.

Evaluated rows carry three objectives (see :mod:`.pareto`): buildable
``cores``; ``cache_fraction`` — the die's cache area share at the
continuous solution; and ``traffic`` — relative off-chip traffic at
the *integer* core count (strictly below the budget, and further below
it the more headroom a configuration leaves).  Configurations whose
supportable count floors to zero cores are counted in ``skipped``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.scaling import BandwidthWallModel
from ..core.solver import BracketError
from ..core.presets import paper_baseline_design
from .pareto import OBJECTIVES, merge_frontiers, objective_key, \
    pareto_frontier
from .space import SearchSpace

__all__ = [
    "EXHAUSTIVE_STRATEGY",
    "EVOLUTIONARY_STRATEGY",
    "AUTO_STRATEGY",
    "STRATEGIES",
    "EXHAUSTIVE_LIMIT",
    "DEFAULT_GENERATIONS",
    "DEFAULT_POPULATION",
    "DEFAULT_OPTIMIZE_CHUNK",
    "OptimizeParams",
    "resolve_strategy",
    "optimize_chunk_count",
    "execute_optimize_chunk",
    "assemble_optimize_artifact",
    "run_search",
]

EXHAUSTIVE_STRATEGY = "exhaustive"
EVOLUTIONARY_STRATEGY = "evolutionary"
AUTO_STRATEGY = "auto"
STRATEGIES = (EXHAUSTIVE_STRATEGY, EVOLUTIONARY_STRATEGY)

#: ``auto`` picks exhaustive at or below this many valid configurations.
EXHAUSTIVE_LIMIT = 4096

DEFAULT_GENERATIONS = 12
DEFAULT_POPULATION = 32

#: Valid configurations per exhaustive chunk.  Large enough that the
#: vectorized kernel amortises well, small enough that a crash loses a
#: bounded slice of work.
DEFAULT_OPTIMIZE_CHUNK = 2048

#: Sub-batch fed to ``supportable_cores_batch`` at a time; bounds peak
#: numpy memory without changing results.
_SUB_BATCH = 512

#: Tournament size for evolutionary parent selection.
_TOURNAMENT = 3

#: Sort key assigned to individuals whose configuration produced no
#: buildable design (worse than any real objective vector).
_INFEASIBLE_KEY = (float("inf"), float("inf"), float("inf"))


@dataclass(frozen=True)
class OptimizeParams:
    """The resolved, canonical inputs of one optimizer run."""

    space: SearchSpace
    ceas: float
    budget: float
    alpha: float
    strategy: str
    seed: int = 0
    generations: int = DEFAULT_GENERATIONS
    population: int = DEFAULT_POPULATION
    chunk_size: int = DEFAULT_OPTIMIZE_CHUNK

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from "
                f"{list(STRATEGIES)}"
            )
        if self.ceas <= 0:
            raise ValueError(f"ceas must be positive, got {self.ceas}")
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.generations <= 0:
            raise ValueError(
                f"generations must be positive, got {self.generations}"
            )
        if self.population <= 0:
            raise ValueError(
                f"population must be positive, got {self.population}"
            )
        if self.chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )

    @classmethod
    def from_spec(cls, spec: Any) -> "OptimizeParams":
        """Adapt an ``optimize`` :class:`~repro.jobs.spec.JobSpec`."""
        return cls(
            space=SearchSpace.from_items(spec.space),
            ceas=spec.ceas[0],
            budget=spec.budgets[0],
            alpha=spec.alpha,
            strategy=spec.strategy,
            seed=spec.seed,
            generations=spec.generations or DEFAULT_GENERATIONS,
            population=spec.population or DEFAULT_POPULATION,
            chunk_size=spec.effective_chunk_size,
        )

    def model(self) -> BandwidthWallModel:
        return BandwidthWallModel(baseline=paper_baseline_design(),
                                  alpha=self.alpha)

    def chunk_count(self) -> int:
        if self.strategy == EVOLUTIONARY_STRATEGY:
            return self.generations
        valid = self.space.valid_count()
        return max(1, -(-valid // self.chunk_size))


def resolve_strategy(strategy: Optional[str],
                     space: SearchSpace) -> str:
    """Collapse ``auto``/empty to a concrete strategy for the space."""
    if strategy in (None, "", AUTO_STRATEGY):
        return (EXHAUSTIVE_STRATEGY
                if space.valid_count() <= EXHAUSTIVE_LIMIT
                else EVOLUTIONARY_STRATEGY)
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from "
            f"{[AUTO_STRATEGY] + list(STRATEGIES)}"
        )
    return strategy


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------

def _evaluate_configs(
    model: BandwidthWallModel,
    params: OptimizeParams,
    configs: Sequence[Tuple[int, ...]],
) -> Tuple[List[Dict[str, Any]], int]:
    """Solve every configuration; returns (rows, skipped_count).

    ``skipped`` counts configurations with no buildable design: the
    supportable count floors to zero cores, or the solve itself is
    infeasible (no bracket).  Rows come back in input order.
    """
    space = params.space
    built = [space.effect(config, params.alpha) for config in configs]
    queries = [(params.ceas, params.budget, effect)
               for effect, _ in built]
    solutions: List[Optional[Any]] = [None] * len(queries)
    for start in range(0, len(queries), _SUB_BATCH):
        sub = queries[start:start + _SUB_BATCH]
        try:
            solved = model.supportable_cores_batch(sub)
        except (BracketError, ValueError):
            # A rare unsolvable point poisons the whole sub-batch
            # exception-wise; fall back to per-point solves and record
            # the failures as skipped (None) deterministically.
            solved = []
            for query in sub:
                try:
                    solved.append(model.supportable_cores(*query))
                except (BracketError, ValueError):
                    solved.append(None)
        solutions[start:start + len(solved)] = solved
    rows: List[Dict[str, Any]] = []
    skipped = 0
    for config, (effect, labels), solution in zip(configs, built,
                                                  solutions):
        if solution is None or solution.cores < 1:
            skipped += 1
            continue
        cores = solution.cores
        rows.append({
            "config_key": list(config),
            "config": space.config_values(config),
            "techniques": list(labels),
            "cores": cores,
            "continuous_cores": solution.continuous_cores,
            "cache_fraction": solution.design.cache_area_share,
            "traffic": model.relative_traffic(params.ceas, cores, effect),
            "area_limited": solution.area_limited,
        })
    return rows, skipped


# ----------------------------------------------------------------------
# Exhaustive strategy
# ----------------------------------------------------------------------

def _exhaustive_chunk_configs(params: OptimizeParams,
                              index: int) -> List[Tuple[int, ...]]:
    configs = list(params.space.enumerate_valid())
    start = index * params.chunk_size
    if not 0 <= start < max(len(configs), 1):
        raise IndexError(
            f"chunk index {index} out of range for "
            f"{params.chunk_count()} chunks"
        )
    return configs[start:start + params.chunk_size]


def _execute_exhaustive_chunk(params: OptimizeParams,
                              index: int) -> Dict[str, Any]:
    model = params.model()
    configs = _exhaustive_chunk_configs(params, index)
    rows, skipped = _evaluate_configs(model, params, configs)
    return {
        "chunk": index,
        "evaluated": len(configs),
        "skipped": skipped,
        "candidates": pareto_frontier(rows),
    }


# ----------------------------------------------------------------------
# Evolutionary strategy
# ----------------------------------------------------------------------

def _generation_rng(seed: int, generation: int) -> random.Random:
    """Self-contained RNG per generation — replay needs no state."""
    return random.Random(seed * 1_000_003 + generation)


def _random_config(space: SearchSpace,
                   rng: random.Random) -> Tuple[int, ...]:
    config = tuple(rng.randrange(len(dim.values))
                   for dim in space.dimensions)
    return space.repair(config)


def _mutate(space: SearchSpace, config: Tuple[int, ...],
            rng: random.Random) -> Tuple[int, ...]:
    """Move one random dimension to a different random index."""
    position = rng.randrange(len(space.dimensions))
    width = len(space.dimensions[position].values)
    mutated = list(config)
    if width > 1:
        offset = rng.randrange(1, width)
        mutated[position] = (config[position] + offset) % width
    return space.repair(tuple(mutated))


def _select(population: Sequence[Tuple[int, ...]],
            fitness: Sequence[Tuple[float, float, float]],
            rng: random.Random) -> Tuple[int, ...]:
    """Tournament selection; ties resolve to the earliest draw."""
    contenders = [rng.randrange(len(population))
                  for _ in range(_TOURNAMENT)]
    best = contenders[0]
    for candidate in contenders[1:]:
        if fitness[candidate] < fitness[best]:
            best = candidate
    return population[best]


def _evolution_snapshot(params: OptimizeParams,
                        upto_generation: int) -> Dict[str, Any]:
    """Replay generations ``0..upto_generation`` and snapshot the state.

    Pure function of (params, upto_generation): the recompute-prefix
    that makes evolutionary chunks independently executable.  Re-solved
    generations hit the process-local solve memo, so replay cost is
    dominated by the newest generation.
    """
    space = params.space
    model = params.model()
    frontier: List[Dict[str, Any]] = []
    evaluated = 0
    skipped_total = 0
    population: List[Tuple[int, ...]] = []
    fitness: List[Tuple[float, float, float]] = []
    for generation in range(upto_generation + 1):
        rng = _generation_rng(params.seed, generation)
        if generation == 0:
            population = [_random_config(space, rng)
                          for _ in range(params.population)]
        else:
            population = [
                _mutate(space, _select(population, fitness, rng), rng)
                for _ in range(params.population)
            ]
        rows, skipped = _evaluate_configs(model, params, population)
        evaluated += len(population)
        skipped_total += skipped
        by_key = {tuple(row["config_key"]): objective_key(row)
                  for row in rows}
        fitness = [by_key.get(config, _INFEASIBLE_KEY)
                   for config in population]
        frontier = merge_frontiers(frontier, rows)
    return {
        "generation": upto_generation,
        "evaluated": evaluated,
        "skipped": skipped_total,
        "frontier": frontier,
    }


# ----------------------------------------------------------------------
# Chunk protocol (used by repro.jobs.executor)
# ----------------------------------------------------------------------

def optimize_chunk_count(params: OptimizeParams) -> int:
    return params.chunk_count()


def execute_optimize_chunk(params: OptimizeParams,
                           index: int) -> Dict[str, Any]:
    """One chunk's JSON-ready payload (slice or generation snapshot)."""
    count = params.chunk_count()
    if not 0 <= index < count:
        raise IndexError(
            f"chunk index {index} out of range for {count} chunks"
        )
    if params.strategy == EVOLUTIONARY_STRATEGY:
        return _evolution_snapshot(params, index)
    return _execute_exhaustive_chunk(params, index)


def assemble_optimize_artifact(
    params: OptimizeParams,
    payloads: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold chunk payloads into the final optimizer artifact."""
    if params.strategy == EVOLUTIONARY_STRATEGY:
        # Every snapshot is cumulative; the last one is the answer.
        final = payloads[-1]
        frontier = pareto_frontier(final["frontier"])
        evaluated = final["evaluated"]
        skipped = final["skipped"]
    else:
        frontier = merge_frontiers(
            *[payload["candidates"] for payload in payloads])
        evaluated = sum(payload["evaluated"] for payload in payloads)
        skipped = sum(payload["skipped"] for payload in payloads)
    request: Dict[str, Any] = {
        "ceas": params.ceas,
        "budget": params.budget,
        "alpha": params.alpha,
        "space": params.space.to_dict(),
    }
    if params.strategy == EVOLUTIONARY_STRATEGY:
        request.update(seed=params.seed,
                       generations=params.generations,
                       population=params.population)
    return {
        "kind": "optimize",
        "strategy": params.strategy,
        "request": request,
        "objectives": list(OBJECTIVES),
        "space_size": params.space.size,
        "valid_configs": params.space.valid_count(),
        "evaluated": evaluated,
        "skipped": skipped,
        "frontier_size": len(frontier),
        "frontier": frontier,
    }


def run_search(params: OptimizeParams) -> Dict[str, Any]:
    """Run a whole search in-process (CLI and benchmark entry point).

    Identical to executing every chunk and assembling — literally, so
    the serial path and the jobs path are byte-identical by
    construction.
    """
    payloads = [execute_optimize_chunk(params, index)
                for index in range(params.chunk_count())]
    return assemble_optimize_artifact(params, payloads)

"""Deterministic Pareto frontier over optimizer objectives.

The optimizer ranks configurations on three objectives:

* ``cores`` — buildable (integer) supportable core count, maximised;
* ``cache_fraction`` — fraction of the processor die spent on cache,
  minimised (die area is the paper's scarce resource);
* ``traffic`` — relative off-chip traffic at the buildable core count,
  minimised (headroom below the bandwidth envelope).

Internally everything is *minimisation* over the key
``(-cores, cache_fraction, traffic)``.  Determinism guarantees, which
make frontiers golden-testable and crash-resume byte-identical:

* the frontier is a pure function of the input **set** — insertion
  order never matters;
* configurations with exactly equal objective vectors collapse to the
  one with the lexicographically smallest config index tuple;
* output order is sorted by ``(-cores, cache_fraction, traffic,
  config)``.

Because dominance is transitive, a point dominated within any subset is
dominated in the union — so chunk-local pruning followed by
:func:`merge_frontiers` equals one global :func:`pareto_frontier` over
all evaluated points.  That equivalence is what lets the jobs executor
checkpoint per-chunk frontiers instead of raw evaluations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "objective_key",
    "dominates",
    "pareto_frontier",
    "merge_frontiers",
]

#: Objective names in artifact order.
OBJECTIVES: Tuple[str, ...] = ("cores", "cache_fraction", "traffic")

Row = Dict[str, Any]


def objective_key(row: Row) -> Tuple[float, float, float]:
    """The minimisation vector for one evaluated row."""
    return (-float(row["cores"]), float(row["cache_fraction"]),
            float(row["traffic"]))


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse in every objective and strictly
    better in at least one (strict Pareto dominance, minimising)."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def pareto_frontier(rows: Sequence[Row]) -> List[Row]:
    """The non-dominated subset of ``rows``, deterministically ordered.

    O(n^2) dominance filtering — frontier inputs are chunk-sized
    (hundreds to a few thousand rows), where the quadratic scan beats
    fancier divide-and-conquer structures and is trivially auditable.
    """
    # Sort first so the result is independent of insertion order and
    # exact-tie collapsing always keeps the smallest config tuple.
    ordered = sorted(rows, key=lambda r: (objective_key(r),
                                          tuple(r["config_key"])))
    keys = [objective_key(row) for row in ordered]
    frontier: List[Row] = []
    frontier_keys: List[Tuple[float, float, float]] = []
    for row, key in zip(ordered, keys):
        dominated = False
        for kept in frontier_keys:
            if kept == key:
                # Exact tie: the earlier (smaller config tuple) row
                # already represents this objective vector.
                dominated = True
                break
            if dominates(kept, key):
                dominated = True
                break
        if not dominated:
            frontier.append(row)
            frontier_keys.append(key)
    return frontier


def merge_frontiers(*frontiers: Sequence[Row]) -> List[Row]:
    """Union chunk-local frontiers into the global frontier."""
    merged: List[Row] = []
    for frontier in frontiers:
        merged.extend(frontier)
    return pareto_frontier(merged)

"""PARSEC-like multithreaded workloads (the Figure 14 measurement input).

Figure 14 shows that the fraction of shared cache lines *declines* as a
PARSEC workload runs on more cores (from ~17.5% at 4 cores to ~15% at
16).  Bienia et al.'s explanation — quoted by the paper — is structural:
"while the shared data set size remains somewhat constant, each new
thread requires its own private working set".

:class:`ParsecLikeWorkload` encodes exactly that structure: a fixed-size
shared region touched by every thread with probability
``shared_access_fraction``, plus one private region per thread.  Total
private footprint grows linearly with the thread count while the shared
footprint stays put, so the shared fraction of evicted lines falls with
core count — reproducing the figure's shape without PARSEC itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .address_stream import MemoryAccess

__all__ = ["ParsecLikeWorkload"]

#: Private regions are laid out after the shared region with this stride
#: (in lines) so threads never alias each other's lines.
_PRIVATE_REGION_STRIDE = 1 << 22


@dataclass(frozen=True)
class ParsecLikeWorkload:
    """A multithreaded stream with constant shared + per-thread private data.

    Parameters
    ----------
    num_threads:
        One thread per core.
    shared_lines:
        Size of the shared region (constant across thread counts —
        "problem scaling" keeps the shared data set fixed).
    private_lines_per_thread:
        Size of each thread's own working set.
    shared_access_fraction:
        Probability that an access targets the shared region.
    reuse_alpha:
        Tail index of the within-region reuse pattern (temporal
        locality); both regions reuse recently-touched lines with a
        Pareto profile so the stream is cacheable.
    """

    num_threads: int
    shared_lines: int = 16384
    private_lines_per_thread: int = 10240
    shared_access_fraction: float = 0.40
    write_fraction: float = 0.25
    line_bytes: int = 64
    seed: int = 0
    #: Index-skew exponents: an access picks line ``u**skew * region``
    #: for uniform u, so higher exponents concentrate on a hot front.
    #: Shared data defaults to uniform (every shared line is genuinely
    #: shared among threads); private data is loop-skewed.
    shared_skew: float = 1.0
    private_skew: float = 2.0

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError(f"need >= 1 thread, got {self.num_threads}")
        if self.shared_lines < 1 or self.private_lines_per_thread < 1:
            raise ValueError("region sizes must be positive")
        if not 0 <= self.shared_access_fraction <= 1:
            raise ValueError(
                "shared_access_fraction must be in [0, 1], got "
                f"{self.shared_access_fraction}"
            )
        if self.shared_lines >= _PRIVATE_REGION_STRIDE:
            raise ValueError("shared region too large for the address layout")
        if self.private_lines_per_thread >= _PRIVATE_REGION_STRIDE:
            raise ValueError("private region too large for the address layout")
        if self.shared_skew < 1 or self.private_skew < 1:
            raise ValueError("skew exponents must be >= 1")

    def _private_base_line(self, thread: int) -> int:
        return (thread + 1) * _PRIVATE_REGION_STRIDE

    def accesses(self, count: int) -> Iterator[MemoryAccess]:
        """Yield ``count`` accesses, round-robin across threads.

        Each thread's accesses are drawn hot-first: line index
        ``floor(u^(1/skew) * region)`` with a skew favouring low indices,
        which gives every region internal temporal locality.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = random.Random(self.seed)
        for i in range(count):
            thread = i % self.num_threads
            if rng.random() < self.shared_access_fraction:
                base = 0
                region = self.shared_lines
                skew = self.shared_skew
            else:
                base = self._private_base_line(thread)
                region = self.private_lines_per_thread
                skew = self.private_skew
            # Skewed index: power the uniform to concentrate on the hot
            # front of the region (temporal locality).
            line = base + int(rng.random() ** skew * region)
            address = line * self.line_bytes + 8 * rng.randrange(8)
            yield MemoryAccess(
                address, rng.random() < self.write_fraction, thread
            )

    def __iter__(self) -> Iterator[MemoryAccess]:
        while True:
            yield from self.accesses(1 << 14)

    @property
    def total_footprint_lines(self) -> int:
        """Distinct lines across shared + all private regions."""
        return (
            self.shared_lines
            + self.num_threads * self.private_lines_per_thread
        )

    @property
    def static_shared_fraction(self) -> float:
        """Shared lines as a fraction of the total footprint.

        This *static* fraction falls as ``1 / num_threads`` grows the
        private footprint — the structural driver behind Figure 14.
        """
        return self.shared_lines / self.total_footprint_lines

"""Multiprogrammed workload mixes.

The paper "assume[s] that we always have threads or applications that
can run on all cores" (Section 3): a CMP's cores run a *mix* of
independent programs.  :class:`MultiprogrammedMix` builds that mix from
the single-threaded presets — one program per core, each placed in a
disjoint address region — so the shared-nothing assumption the traffic
model makes can be fed to a shared cache and checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .address_stream import MemoryAccess, interleave_round_robin
from .commercial import COMMERCIAL_WORKLOADS, WorkloadSpec

__all__ = ["MultiprogrammedMix", "round_robin_commercial_mix"]

#: Address-space stride between programs, in bytes (1 GiB regions).
_REGION_STRIDE = 1 << 30


@dataclass(frozen=True)
class MultiprogrammedMix:
    """One independent program per core, address-disjoint.

    Parameters
    ----------
    programs:
        One :class:`WorkloadSpec` per core, in core order.
    """

    programs: Tuple[WorkloadSpec, ...]

    def __post_init__(self) -> None:
        if not self.programs:
            raise ValueError("a mix needs at least one program")

    @property
    def num_cores(self) -> int:
        return len(self.programs)

    def accesses(self, count_per_core: int) -> Iterator[MemoryAccess]:
        """Interleave the programs round-robin, tagging core ids."""
        if count_per_core < 0:
            raise ValueError(
                f"count_per_core must be >= 0, got {count_per_core}"
            )
        streams: List[Iterator[MemoryAccess]] = []
        for core_id, spec in enumerate(self.programs):
            generator = spec.generator(
                address_base=core_id * _REGION_STRIDE,
                seed=spec.seed + core_id,
            )
            streams.append(
                _with_core_id(generator.accesses(count_per_core), core_id)
            )
        return interleave_round_robin(streams)

    @property
    def average_alpha(self) -> float:
        """Mean design alpha of the mix (the model's workload input)."""
        return sum(s.alpha for s in self.programs) / len(self.programs)


def _with_core_id(stream: Iterator[MemoryAccess],
                  core_id: int) -> Iterator[MemoryAccess]:
    for access in stream:
        yield MemoryAccess(access.address, access.is_write, core_id)


def round_robin_commercial_mix(num_cores: int) -> MultiprogrammedMix:
    """A mix cycling through the seven commercial presets.

    >>> round_robin_commercial_mix(4).num_cores
    4
    """
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    programs = tuple(
        COMMERCIAL_WORKLOADS[i % len(COMMERCIAL_WORKLOADS)]
        for i in range(num_cores)
    )
    return MultiprogrammedMix(programs)

"""Synthetic workload substrate.

Deterministic generators that stand in for the paper's proprietary
traces (commercial workloads, SPEC 2006, PARSEC), constructed so the
statistical properties the analytical model consumes — power-law miss
curves with known alpha, write-back ratios, unused-word fractions,
shared-data structure, value compressibility — are controlled and can be
independently re-measured.
"""

from .address_stream import (
    AddressStream,
    MemoryAccess,
    interleave_round_robin,
    take,
)
from .commercial import (
    COMMERCIAL_WORKLOADS,
    WorkloadSpec,
    commercial_average_alpha,
    commercial_generator,
)
from .mixes import MultiprogrammedMix, round_robin_commercial_mix
from .parsec_like import ParsecLikeWorkload
from .trace_io import TraceFormatError, read_trace, write_trace
from .spec2006 import (
    SPEC2006_WORKLOADS,
    DiscreteWorkingSetGenerator,
    spec2006_generator,
)
from .stack_distance import (
    MissCurve,
    ParetoStackDistanceSampler,
    PowerLawTraceGenerator,
    StackDistanceProfiler,
)
from .values import VALUE_MIXES, ValueGenerator, ValueMix

__all__ = [
    "MemoryAccess",
    "AddressStream",
    "take",
    "interleave_round_robin",
    "ParetoStackDistanceSampler",
    "PowerLawTraceGenerator",
    "StackDistanceProfiler",
    "MissCurve",
    "WorkloadSpec",
    "COMMERCIAL_WORKLOADS",
    "commercial_generator",
    "commercial_average_alpha",
    "DiscreteWorkingSetGenerator",
    "SPEC2006_WORKLOADS",
    "spec2006_generator",
    "ParsecLikeWorkload",
    "ValueGenerator",
    "ValueMix",
    "VALUE_MIXES",
    "MultiprogrammedMix",
    "round_robin_commercial_mix",
    "read_trace",
    "write_trace",
    "TraceFormatError",
]

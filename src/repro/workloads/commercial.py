"""Commercial-like workload presets (the Figure 1 line-up).

The paper measures seven commercial applications — SPECjbb on Linux and
AIX, SPECpower, and four OLTP configurations — whose fitted power-law
exponents span 0.36 (OLTP-2) to 0.62 (OLTP-4) with a curve-fitted
average of 0.48.  Those traces are proprietary; per DESIGN.md's
substitution table we synthesise streams with the *same fitted alphas*
using :class:`~repro.workloads.stack_distance.PowerLawTraceGenerator`,
then re-measure the alphas independently with the cache simulator /
stack-distance profiler.

Alpha assignments: the two extremes are the paper's (OLTP-2 = 0.36,
OLTP-4 = 0.62); the rest are spread so the collection's average matches
the paper's 0.48 commercial fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .stack_distance import PowerLawTraceGenerator

__all__ = [
    "WorkloadSpec",
    "COMMERCIAL_WORKLOADS",
    "commercial_generator",
    "commercial_average_alpha",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic workload preset."""

    name: str
    alpha: float
    working_set_lines: int
    write_fraction: float
    #: Words (of 8) per line the workload ever touches; 5/8 gives the
    #: paper's ~40% unused-data fraction.
    touched_words: int = 5
    seed: int = 0

    def generator(self, **overrides) -> PowerLawTraceGenerator:
        """Instantiate the trace generator for this preset."""
        params = dict(
            alpha=self.alpha,
            working_set_lines=self.working_set_lines,
            write_fraction=self.write_fraction,
            touched_words=self.touched_words,
            seed=self.seed,
        )
        params.update(overrides)
        return PowerLawTraceGenerator(**params)


#: The seven commercial presets of Figure 1.  OLTP-2 and OLTP-4 pin the
#: paper's extreme alphas; the average of all seven is ~0.48.
COMMERCIAL_WORKLOADS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec("SPECjbb (linux)", alpha=0.50, working_set_lines=1 << 16,
                 write_fraction=0.28, seed=101),
    WorkloadSpec("SPECjbb (aix)", alpha=0.47, working_set_lines=1 << 16,
                 write_fraction=0.28, seed=102),
    WorkloadSpec("SPECpower", alpha=0.45, working_set_lines=1 << 15,
                 write_fraction=0.22, seed=103),
    WorkloadSpec("OLTP-1", alpha=0.52, working_set_lines=1 << 16,
                 write_fraction=0.33, seed=104),
    WorkloadSpec("OLTP-2", alpha=0.36, working_set_lines=1 << 16,
                 write_fraction=0.33, seed=105),
    WorkloadSpec("OLTP-3", alpha=0.44, working_set_lines=1 << 16,
                 write_fraction=0.33, seed=106),
    WorkloadSpec("OLTP-4", alpha=0.62, working_set_lines=1 << 16,
                 write_fraction=0.33, seed=107),
)

_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in COMMERCIAL_WORKLOADS}


def commercial_generator(name: str, **overrides) -> PowerLawTraceGenerator:
    """Build the trace generator for a named commercial preset.

    >>> gen = commercial_generator("OLTP-2")
    >>> gen.alpha
    0.36
    """
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
    return spec.generator(**overrides)


def commercial_average_alpha() -> float:
    """Average design alpha of the commercial presets (~the paper's 0.48)."""
    return sum(w.alpha for w in COMMERCIAL_WORKLOADS) / len(COMMERCIAL_WORKLOADS)

"""Synthetic data *values* with controllable compressibility.

The compression substrate (:mod:`repro.compression`) needs line contents
to chew on.  Real compression studies (Alameldeen; Thuresson et al.)
report that workload data is compressible because of zeros, narrow
integers, repeated values and pointer locality.  :class:`ValueGenerator`
manufactures 64-byte lines with tunable proportions of those patterns,
so the measured compression ratios land anywhere in the paper's quoted
1.0x-3.5x range by construction — and we can verify the engines achieve
the Table 2 presets on plausible data.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["ValueGenerator", "ValueMix", "VALUE_MIXES"]


@dataclass(frozen=True)
class ValueMix:
    """Proportions of word patterns within generated lines.

    The five categories follow the frequent-pattern taxonomy: all-zero
    words, narrow (sign-extendable) integers, repeated-byte words, words
    drawn from a small hot value pool (value locality), and
    incompressible random words.  Proportions must sum to 1.
    """

    name: str
    zero: float
    narrow: float
    repeated: float
    hot_pool: float
    random_bits: float

    def __post_init__(self) -> None:
        total = (
            self.zero + self.narrow + self.repeated + self.hot_pool
            + self.random_bits
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"value mix must sum to 1, got {total}")
        for field_name in ("zero", "narrow", "repeated", "hot_pool",
                           "random_bits"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} fraction must be >= 0")


#: Mixes calibrated to land in the literature's compression-ratio bands:
#: commercial ~2x, integer ~2.4x, floating-point ~1.2x, media ~3x.
VALUE_MIXES = {
    "commercial": ValueMix("commercial", zero=0.30, narrow=0.25,
                           repeated=0.10, hot_pool=0.15, random_bits=0.20),
    "integer": ValueMix("integer", zero=0.35, narrow=0.35, repeated=0.10,
                        hot_pool=0.10, random_bits=0.10),
    "floating-point": ValueMix("floating-point", zero=0.10, narrow=0.05,
                               repeated=0.05, hot_pool=0.10,
                               random_bits=0.70),
    "media": ValueMix("media", zero=0.30, narrow=0.40, repeated=0.15,
                      hot_pool=0.10, random_bits=0.05),
}


class ValueGenerator:
    """Generate line contents with a prescribed pattern mix.

    Parameters
    ----------
    homogeneous:
        When True, each *line* draws a single pattern category for all
        its words (arrays of pointers, zeroed pages, pixel runs...)
        instead of mixing categories word-by-word.  Real data clusters
        this way, and base-delta schemes (BDI) only work on such lines.
        Pointer-like lines use a shared per-line base with small offsets.
    """

    def __init__(self, mix: ValueMix, word_bytes: int = 8,
                 hot_pool_size: int = 64, seed: int = 0,
                 homogeneous: bool = False) -> None:
        if word_bytes not in (4, 8):
            raise ValueError(f"word_bytes must be 4 or 8, got {word_bytes}")
        if hot_pool_size < 1:
            raise ValueError(
                f"hot_pool_size must be positive, got {hot_pool_size}"
            )
        self.mix = mix
        self.word_bytes = word_bytes
        self.homogeneous = homogeneous
        self._rng = random.Random(seed)
        bits = word_bytes * 8
        self._hot_pool: List[int] = [
            self._rng.getrandbits(bits) for _ in range(hot_pool_size)
        ]

    def _pick_category(self) -> str:
        pick = self._rng.random()
        mix = self.mix
        for name, weight in (
            ("zero", mix.zero),
            ("narrow", mix.narrow),
            ("repeated", mix.repeated),
            ("hot_pool", mix.hot_pool),
        ):
            if pick < weight:
                return name
            pick -= weight
        return "random_bits"

    def _word_of(self, category: str, line_base: int) -> int:
        rng = self._rng
        bits = self.word_bytes * 8
        if category == "zero":
            return 0
        if category == "narrow":
            return rng.randrange(-128, 128) & ((1 << bits) - 1)
        if category == "repeated":
            byte = line_base & 0xFF
            return int.from_bytes(bytes([byte]) * self.word_bytes, "little")
        if category == "hot_pool":
            if self.homogeneous:
                # Pointer-style: shared base plus a small word offset.
                return (line_base + 8 * rng.randrange(64)) & ((1 << bits) - 1)
            return rng.choice(self._hot_pool)
        return rng.getrandbits(bits)

    def word(self) -> int:
        """One word value drawn from the mix."""
        rng = self._rng
        pick = rng.random()
        mix = self.mix
        bits = self.word_bytes * 8
        if pick < mix.zero:
            return 0
        pick -= mix.zero
        if pick < mix.narrow:
            # Sign-extendable small magnitude: fits in one byte.
            value = rng.randrange(-128, 128)
            return value & ((1 << bits) - 1)
        pick -= mix.narrow
        if pick < mix.repeated:
            byte = rng.randrange(256)
            return int.from_bytes(bytes([byte]) * self.word_bytes, "little")
        pick -= mix.repeated
        if pick < mix.hot_pool:
            return rng.choice(self._hot_pool)
        return rng.getrandbits(bits)

    def line(self, line_bytes: int = 64) -> bytes:
        """One cache line's worth of data."""
        if line_bytes % self.word_bytes:
            raise ValueError(
                f"line_bytes must be a multiple of {self.word_bytes}"
            )
        count = line_bytes // self.word_bytes
        fmt = "<%d%s" % (count, "Q" if self.word_bytes == 8 else "I")
        if self.homogeneous:
            category = self._pick_category()
            base = self._rng.getrandbits(self.word_bytes * 8 - 4)
            words = (self._word_of(category, base) for _ in range(count))
        else:
            words = (self.word() for _ in range(count))
        return struct.pack(fmt, *words)

    def lines(self, count: int, line_bytes: int = 64) -> Iterator[bytes]:
        """Yield ``count`` lines."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for _ in range(count):
            yield self.line(line_bytes)

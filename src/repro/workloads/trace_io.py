"""Trace file I/O: feed real (or saved synthetic) traces to the pipeline.

A production user of this library will eventually want to calibrate the
model from *their* workload, not a synthetic stand-in.  This module
defines a minimal, self-describing trace format and streaming
reader/writer so any address trace can run through the same
calibration, simulation and fitting machinery.

Format (text, one record per line, ``#`` comments allowed)::

    # repro-trace v1
    R 0x7f001040 0
    W 0x7f001048 2

fields: access type (``R``/``W``), byte address (hex or decimal),
optional core id (default 0).  The writer emits hex addresses.  Gzip is
transparent: paths ending in ``.gz`` are (de)compressed on the fly.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from .address_stream import MemoryAccess

__all__ = ["write_trace", "read_trace", "TraceFormatError"]

_MAGIC = "# repro-trace v1"

#: Addresses are 64-bit: wider values would silently wrap in the
#: fixed-width fast paths downstream, so both sides refuse them.
_MAX_ADDRESS = (1 << 64) - 1


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed."""


def _open(path: Union[str, Path], mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))
    return open(path, mode)


def write_trace(
    accesses: Iterable[MemoryAccess],
    path: Union[str, Path],
) -> int:
    """Write a stream of accesses; returns the number written.

    Raises :class:`TraceFormatError` for an empty stream (a trace with
    no records cannot drive calibration and would be indistinguishable
    from a failed capture) and for addresses wider than 64 bits.
    """
    count = 0
    with _open(path, "w") as handle:
        handle.write(_MAGIC + "\n")
        for access in accesses:
            if access.address > _MAX_ADDRESS:
                raise TraceFormatError(
                    f"{path}: address {access.address:#x} does not fit "
                    f"in 64 bits (record {count + 1})"
                )
            kind = "W" if access.is_write else "R"
            handle.write(
                f"{kind} {access.address:#x} {access.core_id}\n"
            )
            count += 1
    if count == 0:
        raise TraceFormatError(
            f"{path}: refusing to write an empty trace (no records)"
        )
    return count


def read_trace(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Stream accesses from a trace file.

    Raises :class:`TraceFormatError` on a bad magic line or record, a
    file with no records, a final line missing its newline (the
    signature of a writer killed mid-record), or an address wider than
    64 bits.
    """
    count = 0
    with _open(path, "r") as handle:
        first = handle.readline()
        if first.rstrip("\n") != _MAGIC or not first.endswith("\n"):
            raise TraceFormatError(
                f"{path}: expected magic line {_MAGIC!r}, got "
                f"{first.rstrip(chr(10))!r}"
            )
        for line_number, line in enumerate(handle, start=2):
            if not line.endswith("\n"):
                raise TraceFormatError(
                    f"{path}:{line_number}: missing trailing newline "
                    f"(file truncated mid-record?)"
                )
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise TraceFormatError(
                    f"{path}:{line_number}: expected 2-3 fields, got "
                    f"{len(parts)}"
                )
            kind = parts[0].upper()
            if kind not in ("R", "W"):
                raise TraceFormatError(
                    f"{path}:{line_number}: access type must be R or W, "
                    f"got {parts[0]!r}"
                )
            try:
                address = int(parts[1], 0)
            except ValueError:
                raise TraceFormatError(
                    f"{path}:{line_number}: bad address {parts[1]!r}"
                ) from None
            if address < 0:
                raise TraceFormatError(
                    f"{path}:{line_number}: negative address"
                )
            if address > _MAX_ADDRESS:
                raise TraceFormatError(
                    f"{path}:{line_number}: address {parts[1]} does "
                    f"not fit in 64 bits"
                )
            core_id = 0
            if len(parts) == 3:
                try:
                    core_id = int(parts[2])
                except ValueError:
                    raise TraceFormatError(
                        f"{path}:{line_number}: bad core id {parts[2]!r}"
                    ) from None
                if core_id < 0:
                    raise TraceFormatError(
                        f"{path}:{line_number}: negative core id"
                    )
            count += 1
            yield MemoryAccess(address, kind == "W", core_id)
    if count == 0:
        raise TraceFormatError(
            f"{path}: trace contains no records"
        )

"""LRU stack distances: sampling them (trace synthesis) and measuring
them (Mattson profiling).

Why stack distances?  For a fully-associative LRU cache of ``W`` lines,
an access hits iff its *stack distance* (the number of distinct lines
touched since the previous access to the same line, counting itself) is
at most ``W``.  A trace whose stack distances follow a truncated Pareto
distribution with tail index ``alpha`` therefore produces a miss-rate
curve ``m(W) ∝ W^-alpha`` — exactly the power law of cache misses the
paper builds on (Section 4.1).  This lets us synthesise workloads with a
*chosen* alpha and then re-measure that alpha independently with a cache
simulator, closing the loop the paper closed with real traces.

Two tools live here:

* :class:`ParetoStackDistanceSampler` + :class:`PowerLawTraceGenerator` —
  synthesis;
* :class:`StackDistanceProfiler` — an exact O(log n)-per-access Mattson
  profiler (Fenwick tree over access times) that produces miss rates for
  *every* cache size from a single pass over a trace.
"""

from __future__ import annotations

import math
import random
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .address_stream import MemoryAccess

try:  # optional, like repro.core.vectorized — stdlib-only still works
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships in the test env
    _np = None

#: Accesses pulled from a stream per profiling batch.  Big enough that
#: the per-batch numpy shift and the hoisted-local Fenwick loop
#: amortise, small enough to keep streaming memory flat.
_STREAM_BATCH = 8192


def _numpy_active() -> bool:
    """Batch through numpy?  Honours ``REPRO_VECTORIZED=off`` so one
    switch disables every vectorized path in the process."""
    if _np is None:
        return False
    from ..core import vectorized

    return vectorized.mode() != "off"

__all__ = [
    "ParetoStackDistanceSampler",
    "PowerLawTraceGenerator",
    "StackDistanceProfiler",
    "MissCurve",
]


class ParetoStackDistanceSampler:
    """Sample integer stack distances with a power-law tail.

    ``P(D > d) = (d / minimum) ** -alpha`` for ``d`` up to ``maximum``
    (the workload's total working-set size in lines); samples beyond the
    maximum are treated by callers as *new* lines (cold misses).

    Parameters
    ----------
    alpha:
        Tail index — becomes the workload's cache-sensitivity alpha.
    maximum:
        Truncation point, i.e. the working-set size in lines.
    minimum:
        Smallest distance (1 = immediate re-reference is possible).
    """

    def __init__(
        self,
        alpha: float,
        maximum: int,
        minimum: int = 1,
        seed: int = 0,
    ) -> None:
        if not math.isfinite(alpha) or alpha <= 0:
            raise ValueError(f"alpha must be positive and finite, got {alpha}")
        if minimum < 1:
            raise ValueError(f"minimum must be >= 1, got {minimum}")
        if maximum <= minimum:
            raise ValueError(
                f"maximum ({maximum}) must exceed minimum ({minimum})"
            )
        self.alpha = alpha
        self.minimum = minimum
        self.maximum = maximum
        self._rng = random.Random(seed)

    def sample(self) -> int:
        """One Pareto-tailed integer distance (may exceed ``maximum``)."""
        u = self._rng.random()
        # Inverse CDF of the continuous Pareto, floored to an integer.
        return int(self.minimum * u ** (-1.0 / self.alpha))

    def survival(self, distance: float) -> float:
        """``P(D > distance)`` of the untruncated distribution."""
        if distance < self.minimum:
            return 1.0
        return (distance / self.minimum) ** (-self.alpha)


class PowerLawTraceGenerator:
    """Synthesise an address stream whose miss curve obeys the power law.

    The generator keeps an explicit LRU stack of line addresses.  For
    each access it samples a stack distance ``d``:

    * ``d`` within the current stack — re-reference the ``d``-th most
      recent line (which the stack then moves to the top),
    * otherwise — touch a brand-new line (compulsory miss / working-set
      growth), bounded by ``working_set_lines``.

    Addresses are spread over a word within the line chosen by a
    configurable *spatial profile*: each line has ``words_per_line``
    words of which only the first ``touched_words`` are ever accessed,
    which manufactures the unused-data fraction the paper's Sections
    6.1-6.3 rely on (e.g. ``touched_words = 5`` of 8 ~= 40% unused).

    Parameters
    ----------
    alpha:
        Target power-law exponent.
    working_set_lines:
        Total distinct lines the workload ever touches.
    write_fraction:
        Fraction of *lines* that are written (all accesses to such a
        line are stores).  Making dirtiness a per-line property is what
        produces the paper's Section 4.2 observation that write-backs
        are an application-specific constant fraction of misses across
        cache sizes: a written line is dirty for any residency length,
        so ``r_wb`` equals the written-line fraction at every capacity.
    touched_words:
        How many distinct words per line the workload uses (1 to
        ``words_per_line``).
    prefill:
        Start with the whole working set already on the LRU stack
        (coldest-first), so reuse distances follow the exact Pareto law
        from the first access.  Without prefill the stack grows as the
        run proceeds and early out-of-stack samples become extra
        compulsory misses, flattening short runs' fitted alpha.  Default
        True; disable to study the warmup transient itself.
    """

    def __init__(
        self,
        alpha: float,
        working_set_lines: int = 1 << 16,
        line_bytes: int = 64,
        word_bytes: int = 8,
        write_fraction: float = 0.25,
        touched_words: Optional[int] = None,
        seed: int = 0,
        address_base: int = 0,
        prefill: bool = True,
    ) -> None:
        if working_set_lines < 2:
            raise ValueError(
                f"working_set_lines must be >= 2, got {working_set_lines}"
            )
        if not 0 <= write_fraction <= 1:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        self.words_per_line = line_bytes // word_bytes
        if touched_words is None:
            touched_words = self.words_per_line
        if not 1 <= touched_words <= self.words_per_line:
            raise ValueError(
                f"touched_words must be in [1, {self.words_per_line}], got "
                f"{touched_words}"
            )
        self.alpha = alpha
        self.working_set_lines = working_set_lines
        self.line_bytes = line_bytes
        self.word_bytes = word_bytes
        self.write_fraction = write_fraction
        self.touched_words = touched_words
        self.address_base = address_base
        self.prefill = prefill
        self._sampler = ParetoStackDistanceSampler(
            alpha=alpha, maximum=working_set_lines, seed=seed
        )
        self._rng = random.Random(seed ^ 0x5EED)

    def _line_is_written(self, line: int) -> bool:
        """Deterministic per-line write classification (Knuth hash)."""
        hashed = (line * 2654435761) & 0xFFFFFFFF
        return hashed / 2**32 < self.write_fraction

    def warmup_accesses(self) -> Iterator[MemoryAccess]:
        """One access per working-set line, deepest-first.

        Feeding this sweep to a cache or profiler (and then resetting its
        statistics) reproduces the prefilled stack state this generator
        assumes, so measurement starts *stationary*: every subsequent
        access's reuse distance is exactly the sampled Pareto distance,
        with no warmup transient and no compulsory misses.
        """
        for line in range(self.working_set_lines - 1, -1, -1):
            yield MemoryAccess(
                self.address_base + line * self.line_bytes,
                self._line_is_written(line),
                0,
            )

    def accesses(self, count: int) -> Iterator[MemoryAccess]:
        """Yield ``count`` accesses."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if self.prefill:
            # Whole working set resident, coldest first (line 0 ends up
            # deepest so fresh lines still enter at sensible depths).
            stack: List[int] = list(range(self.working_set_lines - 1, -1, -1))
            next_line = self.working_set_lines
        else:
            stack = []  # most recent at the END (cheap append/pop)
            next_line = 0
        rng = self._rng
        sampler = self._sampler
        for _ in range(count):
            distance = sampler.sample()
            if distance <= len(stack):
                line = stack[-distance]
                if distance > 1:
                    del stack[-distance]
                    stack.append(line)
            elif next_line < self.working_set_lines:
                line = next_line
                next_line += 1
                stack.append(line)
            else:
                # Working set exhausted: treat as a touch of the coldest
                # line (the far tail of the reuse distribution).
                line = stack[0]
                del stack[0]
                stack.append(line)
            word = rng.randrange(self.touched_words)
            address = (
                self.address_base
                + line * self.line_bytes
                + word * self.word_bytes
            )
            yield MemoryAccess(address, self._line_is_written(line), 0)

    def __iter__(self) -> Iterator[MemoryAccess]:
        """Iterate indefinitely (callers bound with ``take``)."""
        while True:
            yield from self.accesses(1 << 14)


class _Fenwick:
    """Fenwick tree of counts over access-time slots."""

    __slots__ = ("_tree", "size")

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


class StackDistanceProfiler:
    """Exact Mattson stack-distance profiling in O(log n) per access.

    Feed line-granularity addresses with :meth:`record`; the profiler
    maintains a Fenwick tree of "is this time slot the latest access to
    some line" flags, so a re-reference's stack distance is one range
    query.  After the pass, :meth:`miss_curve` evaluates the miss rate
    at any set of cache sizes — simultaneously, from one histogram.
    """

    #: Stack distance reported for a line's first-ever access.
    COLD = math.inf

    def __init__(self, expected_accesses: int = 1 << 20) -> None:
        if expected_accesses < 1:
            raise ValueError(
                f"expected_accesses must be positive, got {expected_accesses}"
            )
        self._capacity = expected_accesses
        self._fenwick = _Fenwick(expected_accesses)
        self._last_time: Dict[int, int] = {}
        self._time = 0
        self._histogram: Dict[int, int] = {}
        self._cold = 0
        self.accesses = 0

    def reset_statistics(self) -> None:
        """Clear the histogram and counters but keep the recency state.

        Use after feeding a warmup stream: subsequent measurements see a
        warm stack without the warmup's cold misses.
        """
        self._histogram = {}
        self._cold = 0
        self.accesses = 0

    def _grow(self) -> None:
        new = _Fenwick(self._capacity * 2)
        for addr, t in self._last_time.items():
            new.add(t, 1)
        self._fenwick = new
        self._capacity *= 2

    def record(self, line_address: int) -> float:
        """Record one access; returns its stack distance (1 = stack top,
        ``COLD`` for a first access)."""
        if self._time >= self._capacity:
            self._grow()
        self.accesses += 1
        previous = self._last_time.get(line_address)
        if previous is None:
            distance: float = self.COLD
            self._cold += 1
        else:
            # Lines whose latest access is strictly after `previous` are
            # above this line in the stack; +1 counts the line itself.
            above = (
                self._fenwick.prefix_sum(self._time - 1)
                - self._fenwick.prefix_sum(previous)
            )
            distance = above + 1
            self._fenwick.add(previous, -1)
            self._histogram[int(distance)] = (
                self._histogram.get(int(distance), 0) + 1
            )
        self._fenwick.add(self._time, 1)
        self._last_time[line_address] = self._time
        self._time += 1
        return distance

    def _record_lines(self, lines: Sequence[int]) -> None:
        """Record a batch of line addresses with the inner loops inlined.

        Same integer arithmetic as :meth:`record` — dict lookups,
        Fenwick range query, histogram update — with the method-call
        overhead hoisted out, so the histogram (and therefore every
        miss curve) is identical to the one-at-a-time path.
        """
        while self._time + len(lines) > self._capacity:
            self._grow()
        tree = self._fenwick._tree
        size = self._fenwick.size
        last = self._last_time
        last_get = last.get
        histogram = self._histogram
        hist_get = histogram.get
        time = self._time
        cold = 0
        for line in lines:
            previous = last_get(line)
            if previous is None:
                cold += 1
            else:
                i = time  # prefix_sum(time - 1)
                above = 0
                while i > 0:
                    above += tree[i]
                    i -= i & (-i)
                i = previous + 1  # - prefix_sum(previous)
                while i > 0:
                    above -= tree[i]
                    i -= i & (-i)
                distance = above + 1
                histogram[distance] = hist_get(distance, 0) + 1
                i = previous + 1  # fenwick.add(previous, -1)
                while i <= size:
                    tree[i] -= 1
                    i += i & (-i)
            i = time + 1  # fenwick.add(time, 1)
            while i <= size:
                tree[i] += 1
                i += i & (-i)
            last[line] = time
            time += 1
        self._time = time
        self._cold += cold
        self.accesses += len(lines)

    def record_stream(
        self, stream: Iterable[MemoryAccess], line_bytes: int = 64
    ) -> None:
        """Record every access of a stream at line granularity.

        Streams are consumed in batches: the address-to-line shift runs
        vectorized when numpy is available, and either way the batch
        feeds :meth:`_record_lines`' hoisted loop.  All arithmetic is
        integer, so both paths produce byte-identical histograms (the
        goldens for the simulation-backed figures pin this).
        """
        shift = line_bytes.bit_length() - 1
        use_numpy = _numpy_active()
        iterator = iter(stream)
        while True:
            batch = list(islice(iterator, _STREAM_BATCH))
            if not batch:
                return
            if use_numpy:
                try:
                    addresses = _np.fromiter(
                        (access.address for access in batch),
                        dtype=_np.uint64, count=len(batch),
                    )
                    lines = (addresses >> _np.uint64(shift)).tolist()
                except (OverflowError, ValueError):
                    # Address beyond uint64 (synthetic stress traces):
                    # integer python handles it exactly.
                    lines = [access.address >> shift for access in batch]
            else:
                lines = [access.address >> shift for access in batch]
            self._record_lines(lines)

    @property
    def cold_misses(self) -> int:
        return self._cold

    @property
    def distinct_lines(self) -> int:
        """Distinct cache lines seen so far (the trace's footprint)."""
        return len(self._last_time)

    def miss_rate(self, cache_lines: int, *,
                  exclude_cold: bool = False) -> float:
        """Miss rate of a fully-associative LRU cache of ``cache_lines``.

        ``exclude_cold`` drops compulsory misses from the numerator: over
        a production-length trace cold misses are negligible, but a short
        synthetic run overweights them, flattening the fitted power law.
        Capacity-only rates are the right input for alpha fitting.
        """
        if cache_lines < 1:
            raise ValueError(f"cache_lines must be >= 1, got {cache_lines}")
        if self.accesses == 0:
            raise ValueError("no accesses recorded")
        misses = sum(
            count
            for distance, count in self._histogram.items()
            if distance > cache_lines
        )
        if not exclude_cold:
            misses += self._cold
        return misses / self.accesses

    def miss_curve(self, cache_line_counts: Sequence[int], *,
                   exclude_cold: bool = False) -> "MissCurve":
        """Miss rates at each capacity, computed from one histogram."""
        sizes = sorted(set(cache_line_counts))
        if not sizes:
            raise ValueError("need at least one cache size")
        if _numpy_active() and self._histogram:
            # Vectorized sweep: sort distances once, cumulate counts,
            # binary-search every capacity.  Numerators stay integers
            # and the final division happens in python floats, exactly
            # like the scalar sweep below — byte-identical rates.
            distances = _np.fromiter(
                self._histogram.keys(), dtype=_np.int64,
                count=len(self._histogram),
            )
            counts = _np.fromiter(
                self._histogram.values(), dtype=_np.int64,
                count=len(self._histogram),
            )
            order = _np.argsort(distances, kind="stable")
            cumulative = _np.cumsum(counts[order])
            positions = _np.searchsorted(
                distances[order], _np.asarray(sizes, dtype=_np.int64),
                side="right",
            )
            total = int(cumulative[-1])
            cold = 0 if exclude_cold else self._cold
            rates = tuple(
                (cold + total
                 - (int(cumulative[position - 1]) if position else 0))
                / self.accesses
                for position in positions
            )
            return MissCurve(tuple(sizes), rates)
        # One sweep over the sorted histogram per curve.
        distances = sorted(self._histogram)
        rates = []
        idx = 0
        beyond = sum(self._histogram.values())
        consumed = 0
        cold = 0 if exclude_cold else self._cold
        for size in sizes:
            while idx < len(distances) and distances[idx] <= size:
                consumed += self._histogram[distances[idx]]
                idx += 1
            misses = cold + (beyond - consumed)
            rates.append(misses / self.accesses)
        return MissCurve(tuple(sizes), tuple(rates))


class MissCurve:
    """A measured miss-rate-vs-cache-size curve (Figure 1 material)."""

    def __init__(self, line_counts: Tuple[int, ...],
                 miss_rates: Tuple[float, ...]) -> None:
        if len(line_counts) != len(miss_rates):
            raise ValueError("sizes and rates must align")
        self.line_counts = line_counts
        self.miss_rates = miss_rates

    def __iter__(self):
        return iter(zip(self.line_counts, self.miss_rates))

    def __len__(self) -> int:
        return len(self.line_counts)

    def normalized(self) -> "MissCurve":
        """Normalise rates to the smallest cache size (Figure 1's y-axis)."""
        if not self.miss_rates or self.miss_rates[0] == 0:
            raise ValueError("cannot normalise: zero miss rate at base size")
        base = self.miss_rates[0]
        return MissCurve(
            self.line_counts, tuple(r / base for r in self.miss_rates)
        )

    def sizes_bytes(self, line_bytes: int = 64) -> Tuple[int, ...]:
        return tuple(count * line_bytes for count in self.line_counts)

"""Address-stream primitives shared by all workload generators.

A workload is an iterable of :class:`MemoryAccess` records.  Generators
in this package are deterministic given their seed, so every measurement
in the test suite and benchmarks is reproducible.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Protocol

__all__ = ["MemoryAccess", "AddressStream", "take", "interleave_round_robin"]


class MemoryAccess(NamedTuple):
    """One memory reference.

    Attributes
    ----------
    address:
        Byte address.
    is_write:
        Store vs load.
    core_id:
        Issuing core (0 for single-threaded streams).
    """

    address: int
    is_write: bool = False
    core_id: int = 0


class AddressStream(Protocol):
    """Anything that can be iterated into :class:`MemoryAccess` records."""

    def __iter__(self) -> Iterator[MemoryAccess]: ...


def take(stream: Iterable[MemoryAccess], count: int) -> List[MemoryAccess]:
    """Materialise the first ``count`` accesses of a stream.

    >>> from itertools import repeat
    >>> len(take(repeat(MemoryAccess(0)), 5))
    5
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    out = []
    for access in stream:
        if len(out) >= count:
            break
        out.append(access)
    return out


def interleave_round_robin(
    streams: List[Iterable[MemoryAccess]],
) -> Iterator[MemoryAccess]:
    """Interleave per-thread streams one access at a time.

    Used to model independent threads time-sharing a memory system; each
    access keeps its originating stream's ``core_id``.  Stops when any
    stream is exhausted, keeping the per-core access counts balanced.
    """
    iterators = [iter(s) for s in streams]
    if not iterators:
        return
    while True:
        for iterator in iterators:
            try:
                yield next(iterator)
            except StopIteration:
                return

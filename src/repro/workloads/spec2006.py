"""SPEC 2006-like synthetic workloads with *discrete* working sets.

Section 4.1 notes that "individual SPEC2006 applications exhibit more
discrete working set sizes (i.e. once the cache is large enough for the
working set, the miss rate declines to a constant value), and hence they
fit less well with the power law.  However, together their average fits
the power law well" — with a shallow fitted alpha of 0.25.

:class:`DiscreteWorkingSetGenerator` reproduces that structure: a stream
cycles through a handful of nested working sets (inner loops, mid-level
data, whole-footprint sweeps).  Its miss curve has plateaus and cliffs;
averaging several apps with staggered working-set sizes smooths into an
approximate power law.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .address_stream import MemoryAccess

__all__ = ["DiscreteWorkingSetGenerator", "SPEC2006_WORKLOADS", "spec2006_generator"]


@dataclass(frozen=True)
class _Region:
    """One working-set region: a range of lines and its access weight."""

    lines: int
    weight: float


class DiscreteWorkingSetGenerator:
    """Accesses drawn from nested fixed-size regions.

    Parameters
    ----------
    region_lines:
        Sizes (in cache lines) of the nested working sets, smallest
        first.  Regions are *nested*: region ``k`` includes all smaller
        regions' lines plus its own.
    region_weights:
        Probability of an access landing in each region's *exclusive*
        part.  Heavier weight on small regions = hot inner loops.
    """

    def __init__(
        self,
        region_lines: Sequence[int],
        region_weights: Sequence[float],
        line_bytes: int = 64,
        word_bytes: int = 8,
        write_fraction: float = 0.15,
        seed: int = 0,
        address_base: int = 0,
    ) -> None:
        if len(region_lines) != len(region_weights):
            raise ValueError("region sizes and weights must align")
        if not region_lines:
            raise ValueError("need at least one region")
        if any(l <= 0 for l in region_lines):
            raise ValueError("region sizes must be positive")
        if list(region_lines) != sorted(region_lines):
            raise ValueError("region sizes must be ascending (nested)")
        total_weight = sum(region_weights)
        if total_weight <= 0:
            raise ValueError("weights must sum to a positive value")
        if not 0 <= write_fraction <= 1:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        self.regions: List[_Region] = [
            _Region(lines, weight / total_weight)
            for lines, weight in zip(region_lines, region_weights)
        ]
        self.line_bytes = line_bytes
        self.word_bytes = word_bytes
        self.write_fraction = write_fraction
        self.address_base = address_base
        self._rng = random.Random(seed)
        #: Sequential sweep cursors, one per region (SPEC-like loops walk
        #: arrays in order rather than at random).
        self._cursors = [0] * len(self.regions)

    @property
    def footprint_lines(self) -> int:
        """Total distinct lines the stream can touch."""
        return self.regions[-1].lines

    def accesses(self, count: int) -> Iterator[MemoryAccess]:
        """Yield ``count`` accesses."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = self._rng
        words_per_line = self.line_bytes // self.word_bytes
        for _ in range(count):
            pick = rng.random()
            cumulative = 0.0
            region_index = len(self.regions) - 1
            for idx, region in enumerate(self.regions):
                cumulative += region.weight
                if pick < cumulative:
                    region_index = idx
                    break
            region = self.regions[region_index]
            # Sweep the region sequentially; sequential reuse is what
            # produces the plateau-and-cliff miss curve.
            line = self._cursors[region_index]
            self._cursors[region_index] = (line + 1) % region.lines
            word = rng.randrange(words_per_line)
            address = (
                self.address_base
                + line * self.line_bytes
                + word * self.word_bytes
            )
            yield MemoryAccess(address, rng.random() < self.write_fraction, 0)

    def __iter__(self) -> Iterator[MemoryAccess]:
        while True:
            yield from self.accesses(1 << 14)


#: Eight SPEC-like apps with staggered working sets: name -> (region
#: sizes in lines, weights).  Staggering the cliff positions is what
#: makes the *average* miss curve approximately a (shallow) power law.
SPEC2006_WORKLOADS: Tuple[Tuple[str, Tuple[int, ...], Tuple[float, ...]], ...] = (
    ("spec-a", (64, 1024, 16384), (0.70, 0.20, 0.10)),
    ("spec-b", (128, 2048, 32768), (0.65, 0.25, 0.10)),
    ("spec-c", (32, 512, 8192), (0.75, 0.15, 0.10)),
    ("spec-d", (256, 4096, 65536), (0.60, 0.28, 0.12)),
    ("spec-e", (96, 1536, 24576), (0.68, 0.22, 0.10)),
    ("spec-f", (48, 768, 12288), (0.72, 0.18, 0.10)),
    ("spec-g", (192, 3072, 49152), (0.62, 0.26, 0.12)),
    ("spec-h", (512, 8192, 131072), (0.58, 0.30, 0.12)),
)


def spec2006_generator(name: str, seed: int = 0, **overrides
                       ) -> DiscreteWorkingSetGenerator:
    """Build a SPEC-like generator by preset name."""
    for preset_name, lines, weights in SPEC2006_WORKLOADS:
        if preset_name == name:
            params = dict(
                region_lines=lines, region_weights=weights, seed=seed
            )
            params.update(overrides)
            return DiscreteWorkingSetGenerator(**params)
    names = [n for n, _, _ in SPEC2006_WORKLOADS]
    raise KeyError(f"unknown SPEC workload {name!r}; choose from {names}")

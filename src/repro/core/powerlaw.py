"""The power law of cache misses (Section 4.1, Equations 1-2).

A long-observed empirical rule states that the miss rate of a workload
responds to cache size as

.. math::  m = m_0 \\cdot (C / C_0)^{-\\alpha}

where :math:`m_0` is the miss rate at a baseline cache size :math:`C_0`
and :math:`\\alpha` measures how sensitive the workload is to cache size.
Hartstein et al. validated this on real workloads and found
:math:`\\alpha \\in [0.3, 0.7]` with an average of 0.5 — the
":math:`\\sqrt 2` rule".

The paper extends the law from miss rate to *memory traffic* (Equation 2):
write-backs are an application-specific constant fraction ``r_wb`` of
misses, so total traffic is ``M = m * (1 + r_wb)`` and the ``(1 + r_wb)``
factor cancels in any ratio of two cache sizes.  The law therefore governs
traffic exactly as it governs misses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "PowerLawMissModel",
    "ALPHA_AVERAGE",
    "ALPHA_COMMERCIAL_AVG",
    "ALPHA_COMMERCIAL_MIN",
    "ALPHA_COMMERCIAL_MAX",
    "ALPHA_SPEC2006_AVG",
]

#: Hartstein et al.'s average alpha (the sqrt-2 rule) and the paper's
#: default workload assumption for all scaling studies (Section 5.1).
ALPHA_AVERAGE = 0.5

#: Curve-fitted alpha over the paper's commercial workloads (Figure 1).
ALPHA_COMMERCIAL_AVG = 0.48

#: Smallest per-application commercial alpha (OLTP-2, Figure 1).
ALPHA_COMMERCIAL_MIN = 0.36

#: Largest per-application commercial alpha (OLTP-4, Figure 1).
ALPHA_COMMERCIAL_MAX = 0.62

#: Alpha of the SPEC 2006 average curve (Figure 1).
ALPHA_SPEC2006_AVG = 0.25


@dataclass(frozen=True)
class PowerLawMissModel:
    """Miss rate (and traffic) as a power law of cache size.

    Parameters
    ----------
    alpha:
        Workload sensitivity to cache size.  Must be positive; values
        observed in practice fall in roughly ``[0.25, 0.7]``.
    baseline_miss_rate:
        :math:`m_0` — miss rate (misses per access, or any fixed unit of
        misses per unit of work) at ``baseline_cache_size``.
    baseline_cache_size:
        :math:`C_0` — the cache size at which ``baseline_miss_rate`` was
        measured.  Any positive unit (bytes, KB, CEAs) works as long as it
        is used consistently.
    writeback_ratio:
        :math:`r_{wb}` — write-backs as a fraction of misses.  Affects
        absolute traffic only; it cancels out of all traffic *ratios*
        (Equation 2).

    Examples
    --------
    >>> law = PowerLawMissModel(alpha=0.5, baseline_miss_rate=0.04,
    ...                         baseline_cache_size=1024)
    >>> law.miss_rate(4096)   # 4x the cache halves the miss rate
    0.02
    """

    alpha: float
    baseline_miss_rate: float = 1.0
    baseline_cache_size: float = 1.0
    writeback_ratio: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha <= 0:
            raise ValueError(f"alpha must be positive and finite, got {self.alpha}")
        if not 0 <= self.baseline_miss_rate <= 1 or not math.isfinite(
            self.baseline_miss_rate
        ):
            raise ValueError(
                f"baseline_miss_rate must be in [0, 1], got {self.baseline_miss_rate}"
            )
        if self.baseline_cache_size <= 0:
            raise ValueError(
                f"baseline_cache_size must be positive, got {self.baseline_cache_size}"
            )
        if self.writeback_ratio < 0:
            raise ValueError(
                f"writeback_ratio must be non-negative, got {self.writeback_ratio}"
            )

    def miss_rate(self, cache_size: float) -> float:
        """Miss rate predicted for ``cache_size`` (Equation 1)."""
        if cache_size <= 0:
            raise ValueError(f"cache_size must be positive, got {cache_size}")
        return self.baseline_miss_rate * (cache_size / self.baseline_cache_size) ** (
            -self.alpha
        )

    def miss_rate_batch(self, cache_sizes: Sequence[float]) -> List[float]:
        """Miss rates for a whole grid of cache sizes at once.

        Bit-identical to ``[self.miss_rate(s) for s in cache_sizes]``
        (same rounding of every operation, same per-element validation
        error at the first offender) but several times faster: the
        per-call attribute lookups, validation branches and method
        dispatch are hoisted out of the loop.  The power itself stays on
        CPython's libm ``pow`` deliberately — numpy's SIMD ``**``
        rounds differently by 1 ulp on a few percent of inputs, which
        would break the batch/scalar equivalence the golden and
        differential suites pin.
        """
        m0 = self.baseline_miss_rate
        c0 = self.baseline_cache_size
        neg_alpha = -self.alpha
        rates = []
        for size in cache_sizes:
            if size <= 0:
                raise ValueError(f"cache_size must be positive, got {size}")
            rates.append(m0 * (size / c0) ** neg_alpha)
        return rates

    def traffic(self, cache_size: float) -> float:
        """Memory traffic (misses + write-backs) for ``cache_size``.

        ``M = m * (1 + r_wb)`` — see Section 4.2.
        """
        return self.miss_rate(cache_size) * (1.0 + self.writeback_ratio)

    def traffic_batch(self, cache_sizes: Sequence[float]) -> List[float]:
        """Batch :meth:`traffic`; bit-identical to the scalar loop."""
        wb = 1.0 + self.writeback_ratio
        return [rate * wb for rate in self.miss_rate_batch(cache_sizes)]

    def traffic_ratio_batch(
        self, new_cache_sizes: Sequence[float], old_cache_size: float
    ) -> List[float]:
        """Batch :meth:`traffic_ratio` against one reference size."""
        if old_cache_size <= 0:
            raise ValueError(
                f"old_cache_size must be positive, got {old_cache_size}"
            )
        neg_alpha = -self.alpha
        ratios = []
        for size in new_cache_sizes:
            if size <= 0:
                raise ValueError(
                    f"new_cache_size must be positive, got {size}"
                )
            ratios.append((size / old_cache_size) ** neg_alpha)
        return ratios

    def traffic_ratio(self, new_cache_size: float, old_cache_size: float) -> float:
        """Traffic with ``new_cache_size`` relative to ``old_cache_size``.

        This is Equation 2: the ``(1 + r_wb)`` factor cancels, so the ratio
        depends only on the size ratio and alpha.
        """
        if old_cache_size <= 0:
            raise ValueError(f"old_cache_size must be positive, got {old_cache_size}")
        if new_cache_size <= 0:
            raise ValueError(f"new_cache_size must be positive, got {new_cache_size}")
        return (new_cache_size / old_cache_size) ** (-self.alpha)

    def cache_size_for_miss_rate(self, target_miss_rate: float) -> float:
        """Invert the law: the cache size that yields ``target_miss_rate``."""
        if target_miss_rate <= 0:
            raise ValueError(
                f"target_miss_rate must be positive, got {target_miss_rate}"
            )
        return self.baseline_cache_size * (
            target_miss_rate / self.baseline_miss_rate
        ) ** (-1.0 / self.alpha)

    def capacity_factor_for_traffic_reduction(self, reduction: float) -> float:
        """Cache-growth factor needed to cut traffic by ``reduction``.

        Section 6.1's dampening observation: to halve traffic
        (``reduction = 2``) with ``alpha = 0.5`` the cache must grow 4x,
        while with ``alpha = 0.9`` growing it ~2.16x suffices.

        >>> PowerLawMissModel(alpha=0.5).capacity_factor_for_traffic_reduction(2)
        4.0
        """
        if reduction <= 0:
            raise ValueError(f"reduction must be positive, got {reduction}")
        return reduction ** (1.0 / self.alpha)

    def with_alpha(self, alpha: float) -> "PowerLawMissModel":
        """Return a copy of this model with a different alpha."""
        return PowerLawMissModel(
            alpha=alpha,
            baseline_miss_rate=self.baseline_miss_rate,
            baseline_cache_size=self.baseline_cache_size,
            writeback_ratio=self.writeback_ratio,
        )

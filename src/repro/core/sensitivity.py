"""Sensitivity analysis: which knob moves the supportable core count?

A designer reading the paper gets point results; a designer using the
model wants *elasticities* — the percentage change in supportable cores
per percent change of each input.  For the base equation these have
closed forms worth knowing:

* **budget** (or any direct factor ``t``): from
  ``(P/P1) (S/S1)^-a = B``, taking logs and differentiating,
  ``dlogP/dlogB = 1 / (1 + a * N / (N - P))`` — always < 1 (a 10%
  bandwidth gift buys < 10% more cores), approaching ``1/(1+a)`` for
  small P.
* **capacity factor** ``F``: the same with an extra ``a`` in the
  numerator, ``dlogP/dlogF = a / (1 + a * N / (N - P))`` — the ``-a``
  dampening of Section 6.1 as an elasticity: a fraction ``a`` of the
  direct technique's leverage.

:func:`elasticities` evaluates these (numerically, so they also hold
with any technique stack applied), and :func:`tornado` ranks all knobs
for a given design point — the classic what-matters-most chart, as
data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .scaling import BandwidthWallModel
from .techniques import NEUTRAL_EFFECT, TechniqueEffect

__all__ = ["Elasticities", "elasticities", "tornado"]

_STEP = 1e-4


@dataclass(frozen=True)
class Elasticities:
    """d(log cores) / d(log knob) at one design point."""

    budget: float
    capacity: float
    alpha_gradient: float  # d(cores)/d(alpha), absolute (alpha isn't a ratio)
    cores: float

    @property
    def dampening(self) -> float:
        """capacity / budget elasticity — the measured ``-alpha``
        dampening (should equal alpha for the plain model)."""
        if self.budget == 0:
            raise ValueError("zero budget elasticity")
        return self.capacity / self.budget


def _cores(model: BandwidthWallModel, total_ceas: float, budget: float,
           effect: TechniqueEffect) -> float:
    return model.supportable_cores(
        total_ceas, traffic_budget=budget, effect=effect
    ).continuous_cores


def elasticities(
    model: BandwidthWallModel,
    total_ceas: float,
    *,
    traffic_budget: float = 1.0,
    effect: TechniqueEffect = NEUTRAL_EFFECT,
) -> Elasticities:
    """Numerical elasticities of the supportable core count."""
    base = _cores(model, total_ceas, traffic_budget, effect)

    bumped_budget = _cores(
        model, total_ceas, traffic_budget * (1 + _STEP), effect
    )
    budget_elasticity = (math.log(bumped_budget) - math.log(base)) / (
        math.log1p(_STEP)
    )

    bumped_effect = effect.combine(
        TechniqueEffect(capacity_factor=1 + _STEP)
    )
    bumped_capacity = _cores(
        model, total_ceas, traffic_budget, bumped_effect
    )
    capacity_elasticity = (math.log(bumped_capacity) - math.log(base)) / (
        math.log1p(_STEP)
    )

    alpha_step = 1e-5
    bumped_model = model.with_alpha(model.alpha + alpha_step)
    alpha_gradient = (
        _cores(bumped_model, total_ceas, traffic_budget, effect) - base
    ) / alpha_step

    return Elasticities(
        budget=budget_elasticity,
        capacity=capacity_elasticity,
        alpha_gradient=alpha_gradient,
        cores=base,
    )


def tornado(
    model: BandwidthWallModel,
    total_ceas: float,
    *,
    swing: float = 0.25,
    traffic_budget: float = 1.0,
    effect: TechniqueEffect = NEUTRAL_EFFECT,
) -> List[Tuple[str, float, float]]:
    """Cores at knob*(1±swing), per knob, ranked by impact.

    Returns ``[(knob, cores_low, cores_high), ...]`` sorted by the
    width ``|high - low|`` descending — the tornado chart's bars.
    """
    if not 0 < swing < 1:
        raise ValueError(f"swing must be in (0, 1), got {swing}")

    def solve(budget=traffic_budget, eff=effect, mdl=model):
        return _cores(mdl, total_ceas, budget, eff)

    bars: Dict[str, Tuple[float, float]] = {}
    bars["bandwidth budget"] = (
        solve(budget=traffic_budget * (1 - swing)),
        solve(budget=traffic_budget * (1 + swing)),
    )
    bars["effective capacity"] = (
        solve(eff=effect.combine(
            TechniqueEffect(capacity_factor=1 - swing)
        )),
        solve(eff=effect.combine(
            TechniqueEffect(capacity_factor=1 + swing)
        )),
    )
    low_alpha = max(0.05, model.alpha * (1 - swing))
    bars["workload alpha"] = (
        solve(mdl=model.with_alpha(low_alpha)),
        solve(mdl=model.with_alpha(model.alpha * (1 + swing))),
    )
    bars["die size"] = (
        _cores(model, total_ceas * (1 - swing), traffic_budget, effect),
        _cores(model, total_ceas * (1 + swing), traffic_budget, effect),
    )
    ranked = sorted(
        ((name, low, high) for name, (low, high) in bars.items()),
        key=lambda bar: abs(bar[2] - bar[1]),
        reverse=True,
    )
    return ranked

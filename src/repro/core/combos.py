"""Technique combinations (Section 6.4, Figure 16).

A :class:`TechniqueStack` is an ordered bundle of techniques whose
effects are folded into a single :class:`TechniqueEffect` with the
paper's composition semantics:

* effective-capacity multipliers and direct traffic factors multiply;
* DRAM density applies to every cache pool the design has, including a
  3D-stacked cache-only die (this rule is load-bearing: it is the only
  composition under which the paper's all-techniques result of 183 cores
  at 16x scaling holds);
* structural conflicts (two different core sizes or cell densities)
  are rejected.

:data:`PAPER_COMBINATIONS` enumerates the 15 combinations on Figure 16's
x-axis (between IDEAL and BASE), in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .techniques import (
    AssumptionLevel,
    CacheCompression,
    CacheLinkCompression,
    DRAMCache,
    LinkCompression,
    SectoredCache,
    SmallCacheLines,
    Technique,
    TechniqueEffect,
    ThreeDStackedCache,
    UnusedDataFiltering,
)

__all__ = ["TechniqueStack", "PAPER_COMBINATIONS", "paper_combination"]


@dataclass(frozen=True)
class TechniqueStack:
    """A combination of bandwidth-conservation techniques.

    Examples
    --------
    The paper's strongest combination (Section 6.4):

    >>> from repro.core.techniques import *
    >>> stack = TechniqueStack((
    ...     CacheLinkCompression(2.0),
    ...     DRAMCache(8.0),
    ...     ThreeDStackedCache(),
    ...     SmallCacheLines(0.4),
    ... ))
    >>> effect = stack.effect()
    >>> effect.resolved_stacked_density
    8.0
    """

    techniques: Tuple[Technique, ...]

    def __post_init__(self) -> None:
        if not self.techniques:
            raise ValueError("a TechniqueStack needs at least one technique")
        names = [t.name for t in self.techniques]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate techniques in stack: {names}")

    @property
    def label(self) -> str:
        """Figure 16-style label, e.g. ``"CC/LC + DRAM + 3D"``."""
        return " + ".join(t.label for t in self.techniques)

    def effect(self) -> TechniqueEffect:
        """Fold all technique effects into one combined effect."""
        combined = self.techniques[0].effect()
        for technique in self.techniques[1:]:
            combined = combined.combine(technique.effect())
        return combined

    @property
    def direct_traffic_reduction(self) -> float:
        """Fraction of raw traffic removed by the stack's direct effects.

        Section 6.4 quotes LC + SmCl removing 70% of traffic directly:

        >>> stack = TechniqueStack((LinkCompression(2.0), SmallCacheLines(0.4)))
        >>> round(stack.direct_traffic_reduction, 2)
        0.7
        """
        return 1.0 - 1.0 / self.effect().traffic_factor

    def effective_capacity_multiplier(
        self, total_ceas: float, core_ceas: float
    ) -> float:
        """Effective cache growth vs an untouched design with the same split.

        Section 6.4 quotes the 3D + DRAM + CC + SmCl cache stack growing
        effective capacity by roughly 53x.
        """
        plain = TechniqueEffect().effective_cache_ceas(total_ceas, core_ceas)
        boosted = self.effect().effective_cache_ceas(total_ceas, core_ceas)
        return boosted / plain


def _combo_constructors() -> Dict[str, Tuple[type, ...]]:
    """Figure 16's combinations, left to right, as technique-type tuples."""
    return {
        "CC + DRAM + 3D": (CacheCompression, DRAMCache, ThreeDStackedCache),
        "CC/LC + DRAM": (CacheLinkCompression, DRAMCache),
        "CC + 3D + Fltr": (CacheCompression, ThreeDStackedCache, UnusedDataFiltering),
        "CC/LC + Fltr": (CacheLinkCompression, UnusedDataFiltering),
        "DRAM + 3D + LC": (DRAMCache, ThreeDStackedCache, LinkCompression),
        "DRAM + Fltr + LC": (DRAMCache, UnusedDataFiltering, LinkCompression),
        "DRAM + LC + Sect": (DRAMCache, LinkCompression, SectoredCache),
        "3D + Fltr + LC": (ThreeDStackedCache, UnusedDataFiltering, LinkCompression),
        "SmCl + LC": (SmallCacheLines, LinkCompression),
        "CC/LC + SmCl": (CacheLinkCompression, SmallCacheLines),
        "DRAM + 3D + SmCl": (DRAMCache, ThreeDStackedCache, SmallCacheLines),
        "CC/LC + DRAM + SmCl": (CacheLinkCompression, DRAMCache, SmallCacheLines),
        "CC/LC + 3D + SmCl": (CacheLinkCompression, ThreeDStackedCache, SmallCacheLines),
        "CC/LC + DRAM + 3D": (CacheLinkCompression, DRAMCache, ThreeDStackedCache),
        "CC/LC + DRAM + 3D + SmCl": (
            CacheLinkCompression,
            DRAMCache,
            ThreeDStackedCache,
            SmallCacheLines,
        ),
    }


#: Names of the Figure 16 combinations, in x-axis order.
PAPER_COMBINATIONS: Tuple[str, ...] = tuple(_combo_constructors())


def paper_combination(
    name: str,
    level: AssumptionLevel = AssumptionLevel.REALISTIC,
) -> TechniqueStack:
    """Build one of Figure 16's combinations at a Table 2 assumption level.

    >>> stack = paper_combination("CC/LC + DRAM + 3D + SmCl")
    >>> stack.label
    'CC/LC + DRAM + 3D + SmCl'
    """
    constructors = _combo_constructors()
    if name not in constructors:
        raise KeyError(
            f"unknown combination {name!r}; expected one of {PAPER_COMBINATIONS}"
        )
    return TechniqueStack(
        tuple(cls.at_level(level) for cls in constructors[name])
    )

"""Named configurations from the paper.

* the Niagara2-like balanced baseline of Section 5.1,
* Table 2's per-technique summary records (labels, assumption levels and
  the paper's qualitative effectiveness / range / complexity ratings),
* bandwidth-growth presets discussed in Sections 1 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .area import ChipDesign
from .powerlaw import ALPHA_AVERAGE
from .scaling import BandwidthWallModel
from .techniques import (
    CacheCompression,
    CacheLinkCompression,
    DRAMCache,
    LinkCompression,
    SectoredCache,
    SmallCacheLines,
    SmallerCores,
    ThreeDStackedCache,
    UnusedDataFiltering,
)

__all__ = [
    "paper_baseline_design",
    "paper_baseline_model",
    "Rating",
    "Table2Row",
    "TABLE2_ROWS",
    "BANDWIDTH_GROWTH_CONSTANT",
    "BANDWIDTH_GROWTH_OPTIMISTIC_NEXT_GEN",
    "BANDWIDTH_GROWTH_ITRS_PER_GENERATION",
]

#: Keep total memory traffic flat across generations (the paper's default).
BANDWIDTH_GROWTH_CONSTANT = 1.0

#: Section 5.1's "optimistic 50% growth in the next generation".
BANDWIDTH_GROWTH_OPTIMISTIC_NEXT_GEN = 1.5

#: ITRS projects ~10%/year pin growth; at 18 months per generation that
#: compounds to ~1.1**1.5 ~= 15% of extra bandwidth per generation.
BANDWIDTH_GROWTH_ITRS_PER_GENERATION = 1.1**1.5


def paper_baseline_design() -> ChipDesign:
    """The Section 5.1 baseline: 8 cores + 8 CEAs of L2 on a 16-CEA die."""
    return ChipDesign(total_ceas=16, core_ceas=8)


def paper_baseline_model(alpha: float = ALPHA_AVERAGE) -> BandwidthWallModel:
    """The bandwidth-wall model with the paper's baseline and alpha."""
    return BandwidthWallModel(baseline=paper_baseline_design(), alpha=alpha)


class Rating:
    """Qualitative ratings used in Table 2."""

    LOW = "Low"
    MEDIUM = "Med."
    HIGH = "High"


@dataclass(frozen=True)
class Table2Row:
    """One technique's row of Table 2."""

    technique: str
    label: str
    realistic: str
    pessimistic: str
    optimistic: str
    effectiveness: str
    variability: str
    complexity: str
    technique_type: type


TABLE2_ROWS: Tuple[Table2Row, ...] = (
    Table2Row(
        "Cache Compress", "CC", "2x compr.", "1.25x compr.", "3.5x compr.",
        Rating.MEDIUM, Rating.LOW, Rating.MEDIUM, CacheCompression,
    ),
    Table2Row(
        "DRAM Cache", "DRAM", "8x density", "4x density", "16x density",
        Rating.HIGH, Rating.MEDIUM, Rating.LOW, DRAMCache,
    ),
    Table2Row(
        "3D-stacked Cache", "3D", "3D SRAM layer", "-", "-",
        Rating.MEDIUM, Rating.LOW, Rating.HIGH, ThreeDStackedCache,
    ),
    Table2Row(
        "Unused Data Filter", "Fltr", "40% unused data", "10% unused data",
        "80% unused data", Rating.MEDIUM, Rating.MEDIUM, Rating.MEDIUM,
        UnusedDataFiltering,
    ),
    Table2Row(
        "Smaller Cores", "SmCo", "40x less area", "9x less area",
        "80x less area", Rating.LOW, Rating.LOW, Rating.LOW, SmallerCores,
    ),
    Table2Row(
        "Link Compress", "LC", "2x compr.", "1.25x compr.", "3.5x compr.",
        Rating.HIGH, Rating.MEDIUM, Rating.LOW, LinkCompression,
    ),
    Table2Row(
        "Sectored Caches", "Sect", "40% unused data", "10% unused data",
        "80% unused data", Rating.MEDIUM, Rating.HIGH, Rating.MEDIUM,
        SectoredCache,
    ),
    Table2Row(
        "Cache+Link Compress", "CC/LC", "2x compr.", "1.25x compr.",
        "3.5x compr.", Rating.HIGH, Rating.HIGH, Rating.LOW,
        CacheLinkCompression,
    ),
    Table2Row(
        "Smaller Cache Lines", "SmCl", "40% unused data", "10% unused data",
        "80% unused data", Rating.HIGH, Rating.HIGH, Rating.MEDIUM,
        SmallCacheLines,
    ),
)

"""Area overheads: uncore fractions and interconnect growth.

Two of the paper's side remarks become quantitative here:

* Section 4.2 assumes "on-chip components other than cores and caches
  occupy a constant fraction of the die area regardless of the process
  technology generation" — the *uncore fraction*.  The model is
  unaffected as long as the fraction is constant; this module lets a
  user check how results move when it is not.

* Section 6.1's smaller-cores caveat: "in practice, there is a limit to
  this approach, since with increasingly smaller cores, the
  interconnection between cores (routers, links, buses, etc.) becomes
  increasingly larger and more complex."  :class:`InterconnectModel`
  charges each core a router-area tax that grows with the core count
  (per-core router area ∝ ``cores**growth_exponent``; a mesh with
  wider links toward the centre, or a crossbar-ish fabric, push the
  exponent up), and the solver shows the paper's predicted limit: past
  some point, smaller cores stop buying cores at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .scaling import BandwidthWallModel, ScalingSolution
from .solver import BracketError, floor_cores, solve_increasing
from .techniques import NEUTRAL_EFFECT, TechniqueEffect

__all__ = ["UncoreModel", "InterconnectModel", "OverheadAwareWallModel"]


@dataclass(frozen=True)
class UncoreModel:
    """A fixed fraction of every die reserved for non-core/cache logic."""

    fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.fraction < 1:
            raise ValueError(
                f"uncore fraction must be in [0, 1), got {self.fraction}"
            )

    def usable_ceas(self, total_ceas: float) -> float:
        return total_ceas * (1.0 - self.fraction)


@dataclass(frozen=True)
class InterconnectModel:
    """Per-core interconnect area that grows with the core count.

    Router + link area charged to each core:

        tax(P) = base_tax * (P / reference_cores) ** growth_exponent

    ``growth_exponent = 0`` is a fixed per-core router (a mesh with
    constant-width links); positive exponents model richer fabrics
    whose bisection grows superlinearly.
    """

    base_tax: float = 0.05
    growth_exponent: float = 0.5
    reference_cores: float = 8.0

    def __post_init__(self) -> None:
        if self.base_tax < 0:
            raise ValueError(f"base_tax must be >= 0, got {self.base_tax}")
        if self.growth_exponent < 0:
            raise ValueError(
                f"growth_exponent must be >= 0, got {self.growth_exponent}"
            )
        if self.reference_cores <= 0:
            raise ValueError(
                f"reference_cores must be positive, got {self.reference_cores}"
            )

    def tax_per_core(self, cores: float) -> float:
        """CEAs of interconnect charged to each core."""
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        return self.base_tax * (cores / self.reference_cores) ** (
            self.growth_exponent
        )

    def total_area(self, cores: float) -> float:
        return cores * self.tax_per_core(cores)


class OverheadAwareWallModel:
    """The bandwidth-wall solve with uncore and interconnect overheads.

    Cache left for a candidate core count ``P``:

        C(P) = usable(N) - f_sm * P - interconnect(P)

    Everything else (power law, budgets, technique effects) is the base
    model's.  Overheads only *shrink* the cache, so all monotonicity
    properties carry over and the same bisection applies.
    """

    def __init__(
        self,
        wall: BandwidthWallModel,
        uncore: UncoreModel = UncoreModel(),
        interconnect: InterconnectModel = InterconnectModel(base_tax=0.0),
    ) -> None:
        self.wall = wall
        self.uncore = uncore
        self.interconnect = interconnect

    def relative_traffic(
        self,
        total_ceas: float,
        cores: float,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> float:
        usable = self.uncore.usable_ceas(total_ceas)
        overhead = self.interconnect.total_area(cores)
        die_for_cores_and_cache = usable - overhead
        core_area = effect.core_area_fraction * cores
        cache = die_for_cores_and_cache - core_area
        if cache <= 0:
            return math.inf
        raw = effect.on_die_density * cache
        raw += (effect.stacked_layers
                * effect.resolved_stacked_density * total_ceas)
        s2 = effect.capacity_factor * raw / cores
        p1 = self.wall.baseline.num_cores
        s1 = self.wall.baseline.cache_per_core
        return ((cores / p1) * (s2 / s1) ** (-self.wall.alpha)
                / effect.traffic_factor)

    def supportable_cores(
        self,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> float:
        """Continuous supportable core count under the overheads."""
        if total_ceas <= 0:
            raise ValueError(f"total_ceas must be positive, got {total_ceas}")
        if traffic_budget <= 0:
            raise ValueError(
                f"traffic_budget must be positive, got {traffic_budget}"
            )
        usable = self.uncore.usable_ceas(total_ceas)
        max_cores = usable / effect.core_area_fraction

        def traffic(cores: float) -> float:
            return self.relative_traffic(total_ceas, cores, effect)

        try:
            return solve_increasing(traffic, traffic_budget, 0.0, max_cores)
        except BracketError:
            if traffic(max_cores * (1 - 1e-12)) < traffic_budget:
                return max_cores
            raise

    def smaller_core_limit(
        self,
        total_ceas: float,
        core_area_fractions,
        *,
        traffic_budget: float = 1.0,
    ):
        """Supportable cores for progressively smaller cores.

        The paper's caveat made visible: with a growing interconnect
        tax, shrinking cores eventually stops increasing (and can
        decrease) the supportable count.  Returns
        ``[(fraction, cores), ...]``.
        """
        results = []
        for fraction in core_area_fractions:
            effect = TechniqueEffect(core_area_fraction=fraction)
            cores = self.supportable_cores(
                total_ceas, traffic_budget=traffic_budget, effect=effect
            )
            results.append((fraction, cores))
        return results

"""Memoized evaluation of the bandwidth-wall solve.

Every paper artifact is a sweep over ``(die CEAs, alpha, budget,
technique)`` grids built on the same power-law model, so the figure
drivers repeat identical :meth:`BandwidthWallModel.supportable_cores`
solves thousands of times (every sweep re-solves the baseline point,
the four-generation studies share their grids, ...).  The solve is a
pure function of a small, fully-hashable key:

* the model is a frozen dataclass (``baseline`` :class:`ChipDesign` +
  ``alpha``),
* the query is ``(total_ceas, traffic_budget)`` plus a frozen
  :class:`TechniqueEffect`,

so the result — a frozen :class:`ScalingSolution` — can be cached and
shared freely.  :class:`MemoCache` is that cache;
:mod:`repro.core.scaling` consults the process-global instance on every
solve, and the sweep engine (:mod:`repro.experiments.engine`) reports
its hit rate.

The memoization contract
------------------------
A cache entry is keyed by **every** input that can influence the solve
(:class:`ModelKey`), all of them immutable value types, and the cached
value is itself immutable, so sharing one instance between callers is
safe.  Entries never go stale: the solve depends on nothing but its
key (no I/O, no global configuration).  The cache is per-process —
parallel sweep workers each warm their own — and bounded (FIFO
eviction) so long-lived services cannot leak memory.  Disable it with
:func:`configure` or the :func:`disabled` context manager when timing
the raw solver.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, \
    Tuple, TYPE_CHECKING

from .area import ChipDesign
from .techniques import TechniqueEffect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .scaling import ScalingSolution

__all__ = [
    "ModelKey",
    "CacheStats",
    "MemoSnapshot",
    "MemoCache",
    "global_cache",
    "active_cache",
    "cache_stats",
    "stats_snapshot",
    "clear_cache",
    "configure",
    "disabled",
    "install_cache",
]

#: Default bound on the process-global cache.  Design-space sweeps touch
#: tens of thousands of distinct points; one entry is a few hundred
#: bytes, so the default caps memory at tens of MB.
DEFAULT_MAXSIZE = 100_000


@dataclass(frozen=True)
class ModelKey:
    """Everything that determines one ``supportable_cores`` solve.

    All five fields are immutable value types (frozen dataclasses or
    floats), so the key is hashable and equality means "same solve".
    """

    baseline: ChipDesign
    alpha: float
    total_ceas: float
    traffic_budget: float
    effect: TechniqueEffect


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas between this snapshot and an earlier one."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            size=self.size,
        )


@dataclass(frozen=True)
class MemoSnapshot:
    """A public, point-in-time view of one memo cache's state.

    Unlike :class:`CacheStats` (which only carries counters), a snapshot
    also records the cache's configuration, so observability layers (CLI
    ``--timing``, the service's ``/metrics`` endpoint) never need to
    reach into private fields.
    """

    hits: int
    misses: int
    size: int
    maxsize: int
    enabled: bool

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat form for JSON payloads and metric exposition."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "size": self.size,
            "maxsize": self.maxsize,
            "enabled": self.enabled,
        }


class MemoCache:
    """A bounded, thread-safe memo table for scaling solves.

    FIFO eviction keeps the implementation observable and deterministic;
    sweep workloads touch each key a handful of times in quick
    succession, so recency tracking buys nothing.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[ModelKey, ScalingSolution]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def lookup(self, key: ModelKey) -> Optional["ScalingSolution"]:
        """Return the cached solution for ``key``, counting hit or miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
            else:
                self._hits += 1
            return value

    def lookup_many(
        self, keys: Sequence[ModelKey]
    ) -> List[Optional["ScalingSolution"]]:
        """Batch :meth:`lookup`: one lock acquisition for a whole grid.

        Returns hits and ``None`` misses in key order; the hit/miss
        counters advance exactly as per-key lookups would, so sweep
        cache-rate reporting is unaffected by the batch path.
        """
        with self._lock:
            values = [self._entries.get(key) for key in keys]
            hits = sum(1 for value in values if value is not None)
            self._hits += hits
            self._misses += len(values) - hits
            return values

    def store(self, key: ModelKey, value: "ScalingSolution") -> None:
        """Insert one solve result, evicting the oldest entry when full."""
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
            self._entries[key] = value

    def store_many(
        self, items: Iterable[Tuple[ModelKey, "ScalingSolution"]]
    ) -> None:
        """Batch :meth:`store` under one lock acquisition.

        FIFO eviction applies entry-by-entry, so interleaving with
        per-key stores is indistinguishable from calling
        :meth:`store` in a loop.
        """
        with self._lock:
            for key, value in items:
                if key not in self._entries \
                        and len(self._entries) >= self.maxsize:
                    self._entries.popitem(last=False)
                self._entries[key] = value

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(self._hits, self._misses, len(self._entries))

    def stats_snapshot(self, *, enabled: bool = True) -> MemoSnapshot:
        """Atomic counters-plus-configuration snapshot (thread-safe).

        ``enabled`` is the caller's view of whether lookups currently
        route through this cache; the module-level
        :func:`stats_snapshot` fills it in for the global instance.
        """
        with self._lock:
            return MemoSnapshot(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
                enabled=enabled,
            )

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_GLOBAL_CACHE = MemoCache()
_ENABLED = True


def global_cache() -> MemoCache:
    """The process-global cache (also valid while memoization is off)."""
    return _GLOBAL_CACHE


def active_cache() -> Optional[MemoCache]:
    """The cache the solve path should consult, or None when disabled."""
    return _GLOBAL_CACHE if _ENABLED else None


def cache_stats() -> CacheStats:
    """Snapshot of the global cache's counters."""
    return _GLOBAL_CACHE.stats()


def stats_snapshot() -> MemoSnapshot:
    """Public, thread-safe snapshot of the global solve memo.

    The supported way for observability consumers (CLI ``--timing``,
    the service's ``/metrics``) to read hit/miss/size without touching
    private state.
    """
    return _GLOBAL_CACHE.stats_snapshot(enabled=_ENABLED)


def clear_cache() -> None:
    """Empty the global cache and reset its counters."""
    _GLOBAL_CACHE.clear()


def configure(*, enabled: bool) -> None:
    """Globally enable or disable memoized solving."""
    global _ENABLED
    _ENABLED = enabled


def install_cache(cache: MemoCache) -> MemoCache:
    """Swap the process-global memo for ``cache``; returns the previous.

    Anything honouring the :class:`MemoCache` interface qualifies —
    the scale-out layer installs a tiered L1-over-shared-store subclass
    in each pre-forked worker.  Callers restore the returned instance
    on shutdown.
    """
    global _GLOBAL_CACHE
    previous = _GLOBAL_CACHE
    _GLOBAL_CACHE = cache
    return previous


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Temporarily bypass the cache (e.g. to time the raw solver)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous

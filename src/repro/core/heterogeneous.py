"""Heterogeneous CMPs under the bandwidth wall (extension).

Section 3 of the paper restricts the study to uniform cores but notes
the road not taken: "A heterogeneous CMP has the potential of being
more area efficient overall, and this allows caches to be larger and
generates less memory traffic from cache misses and write backs."
This module implements exactly that extension on top of the same
traffic model, so the hypothesis can be evaluated instead of assumed.

A :class:`CoreType` carries three numbers:

* ``area`` — CEAs one core occupies,
* ``traffic_rate`` — memory traffic per unit time relative to the
  baseline core (complex speculative cores waste bandwidth, ``> 1``;
  simple cores are frugal, ``<= 1``),
* ``throughput`` — useful work per unit time relative to the baseline
  core.

A :class:`HeterogeneousMix` fixes the *ratio* between types; the solver
scales the whole mix until the chip's traffic meets the budget, with
the leftover die area as cache shared equally per running thread (the
same ``S = C / P`` accounting as the uniform model — one thread per
core).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .area import ChipDesign
from .solver import BracketError, solve_increasing

__all__ = ["CoreType", "HeterogeneousMix", "HeterogeneousWallModel",
           "MixSolution", "BIG_CORE", "BASE_CORE", "LITTLE_CORE"]


@dataclass(frozen=True)
class CoreType:
    """One core flavour in a heterogeneous design."""

    name: str
    area: float = 1.0
    traffic_rate: float = 1.0
    throughput: float = 1.0

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError(f"area must be positive, got {self.area}")
        if self.traffic_rate <= 0:
            raise ValueError(
                f"traffic_rate must be positive, got {self.traffic_rate}"
            )
        if self.throughput <= 0:
            raise ValueError(
                f"throughput must be positive, got {self.throughput}"
            )

    @property
    def bandwidth_efficiency(self) -> float:
        """Useful work per unit of traffic — the figure of merit the
        paper's smaller-cores discussion gestures at.

        >>> BASE_CORE.bandwidth_efficiency
        1.0
        """
        return self.throughput / self.traffic_rate


#: An aggressive out-of-order core: 4 CEAs, fast, but speculative
#: fetches waste bandwidth (Kumar et al.'s big:little area ratios).
BIG_CORE = CoreType("big", area=4.0, traffic_rate=2.4, throughput=2.0)

#: The paper's baseline in-order core: the CEA unit itself.
BASE_CORE = CoreType("base", area=1.0, traffic_rate=1.0, throughput=1.0)

#: A minimal core: quarter the area, proportionally slower, and no
#: speculation so its traffic tracks its (lower) execution rate.
LITTLE_CORE = CoreType("little", area=0.25, traffic_rate=0.45,
                       throughput=0.45)


@dataclass(frozen=True)
class HeterogeneousMix:
    """A ratio of core types, e.g. 1 big : 4 little."""

    parts: Tuple[Tuple[CoreType, float], ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("a mix needs at least one core type")
        names = [core_type.name for core_type, _ in self.parts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate core types in mix: {names}")
        for _, weight in self.parts:
            if weight <= 0:
                raise ValueError(
                    f"mix weights must be positive, got {weight}"
                )

    @classmethod
    def uniform(cls, core_type: CoreType) -> "HeterogeneousMix":
        return cls(((core_type, 1.0),))

    @property
    def label(self) -> str:
        return " + ".join(
            f"{weight:g}x{core_type.name}" for core_type, weight in self.parts
        )

    def area_per_unit(self) -> float:
        """CEAs consumed by one unit of the mix."""
        return sum(core.area * weight for core, weight in self.parts)

    def cores_per_unit(self) -> float:
        return sum(weight for _, weight in self.parts)

    def traffic_rate_per_unit(self) -> float:
        return sum(core.traffic_rate * weight for core, weight in self.parts)

    def throughput_per_unit(self) -> float:
        return sum(core.throughput * weight for core, weight in self.parts)


@dataclass(frozen=True)
class MixSolution:
    """Largest population of a mix that fits the traffic budget."""

    mix: HeterogeneousMix
    scale: float
    total_ceas: float

    @property
    def counts(self) -> Dict[str, float]:
        return {
            core.name: weight * self.scale
            for core, weight in self.mix.parts
        }

    @property
    def total_cores(self) -> float:
        return self.mix.cores_per_unit() * self.scale

    @property
    def core_area(self) -> float:
        return self.mix.area_per_unit() * self.scale

    @property
    def cache_ceas(self) -> float:
        return self.total_ceas - self.core_area

    @property
    def cache_per_core(self) -> float:
        return self.cache_ceas / self.total_cores

    @property
    def throughput(self) -> float:
        """Chip throughput in baseline-core units."""
        return self.mix.throughput_per_unit() * self.scale


class HeterogeneousWallModel:
    """The bandwidth-wall traffic model with per-type traffic rates.

    Traffic of a populated mix, relative to the uniform baseline chip:

    .. math::
       M = \\left(\\sum_i n_i t_i / P_1\\right)
           \\cdot (S / S_1)^{-\\alpha}

    i.e. each core contributes traffic proportional to its execution
    rate (``t_i``), all filtered by the shared per-core cache through
    the usual power law.
    """

    def __init__(self, baseline: ChipDesign, alpha: float = 0.5) -> None:
        if not math.isfinite(alpha) or alpha <= 0:
            raise ValueError(f"alpha must be positive and finite, got {alpha}")
        if baseline.cache_per_core <= 0:
            raise ValueError("baseline design must include cache")
        self.baseline = baseline
        self.alpha = alpha

    def relative_traffic(self, mix: HeterogeneousMix, scale: float,
                         total_ceas: float) -> float:
        """``M / M1`` for ``scale`` units of ``mix`` on a die."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        core_area = mix.area_per_unit() * scale
        cache = total_ceas - core_area
        if cache <= 0:
            return math.inf
        cores = mix.cores_per_unit() * scale
        s = cache / cores
        rate = mix.traffic_rate_per_unit() * scale
        p1 = self.baseline.num_cores
        s1 = self.baseline.cache_per_core
        return (rate / p1) * (s / s1) ** (-self.alpha)

    def solve_mix(
        self,
        mix: HeterogeneousMix,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
    ) -> MixSolution:
        """Scale the mix up to the traffic budget (or the die edge)."""
        if total_ceas <= 0:
            raise ValueError(f"total_ceas must be positive, got {total_ceas}")
        if traffic_budget <= 0:
            raise ValueError(
                f"traffic_budget must be positive, got {traffic_budget}"
            )
        max_scale = total_ceas / mix.area_per_unit()

        def traffic(scale: float) -> float:
            return self.relative_traffic(mix, scale, total_ceas)

        try:
            scale = solve_increasing(traffic, traffic_budget, 0.0, max_scale)
        except BracketError:
            if traffic(max_scale * (1 - 1e-12)) < traffic_budget:
                scale = max_scale  # area limited
            else:
                raise
        return MixSolution(mix=mix, scale=scale, total_ceas=total_ceas)

    def best_mix(
        self,
        mixes: Sequence[HeterogeneousMix],
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
    ) -> MixSolution:
        """The mix with the highest chip throughput under the budget."""
        if not mixes:
            raise ValueError("need at least one mix to compare")
        solutions = [
            self.solve_mix(mix, total_ceas, traffic_budget=traffic_budget)
            for mix in mixes
        ]
        return max(solutions, key=lambda solution: solution.throughput)

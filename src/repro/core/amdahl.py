"""Hill & Marty's multicore Amdahl's-law model, and its combination with
the bandwidth wall.

The paper's related work contrasts itself with Hill & Marty ("Amdahl's
Law in the Multicore Era", IEEE Computer 2008): their model bounds CMP
*speedup* by software parallelism, ours bounds CMP *core count* by
off-chip traffic.  A designer needs both.  This module implements the
Hill-Marty symmetric / asymmetric / dynamic chip models as the
comparison baseline, plus :class:`CombinedWallModel`, which evaluates a
symmetric design under the parallelism bound *and* the bandwidth wall
simultaneously — showing which constraint binds for a given workload
(``f``, ``alpha``) and die size.

Hill & Marty's conventions: a die holds ``n`` base-core equivalents
(BCEs); a core built from ``r`` BCEs has sequential performance
``perf(r) = sqrt(r)``; a fraction ``f`` of the work is parallelisable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .scaling import BandwidthWallModel, ScalingSolution
from .techniques import NEUTRAL_EFFECT, TechniqueEffect

__all__ = [
    "perf",
    "symmetric_speedup",
    "asymmetric_speedup",
    "dynamic_speedup",
    "best_symmetric_design",
    "CombinedWallModel",
    "CombinedDesignPoint",
]


def _check_fraction(f: float) -> None:
    if not 0 <= f <= 1:
        raise ValueError(f"parallel fraction must be in [0, 1], got {f}")


def _check_resources(n: float, r: float) -> None:
    if n <= 0:
        raise ValueError(f"n (BCEs) must be positive, got {n}")
    if not 1 <= r <= n:
        raise ValueError(f"r must be in [1, n={n}], got {r}")


def perf(r: float) -> float:
    """Hill & Marty's performance of an ``r``-BCE core: ``sqrt(r)``."""
    if r <= 0:
        raise ValueError(f"r must be positive, got {r}")
    return math.sqrt(r)


def symmetric_speedup(f: float, n: float, r: float) -> float:
    """Speedup of ``n/r`` identical ``r``-BCE cores (Hill-Marty Eq. 1).

    >>> round(symmetric_speedup(0.999, 256, 1), 1)
    204.0
    """
    _check_fraction(f)
    _check_resources(n, r)
    cores = n / r
    sequential = (1 - f) / perf(r)
    parallel = f / (perf(r) * cores)
    return 1.0 / (sequential + parallel)


def asymmetric_speedup(f: float, n: float, r: float) -> float:
    """One ``r``-BCE big core plus ``n - r`` base cores (Eq. 2)."""
    _check_fraction(f)
    _check_resources(n, r)
    sequential = (1 - f) / perf(r)
    parallel = f / (perf(r) + (n - r))
    return 1.0 / (sequential + parallel)


def dynamic_speedup(f: float, n: float, r: float) -> float:
    """Dynamic chip: ``r`` BCEs fuse for sequential phases (Eq. 3)."""
    _check_fraction(f)
    _check_resources(n, r)
    sequential = (1 - f) / perf(r)
    parallel = f / n
    return 1.0 / (sequential + parallel)


def best_symmetric_design(f: float, n: float) -> float:
    """The core size ``r`` maximising symmetric speedup (grid search over
    the divisor-free continuous relaxation, 1..n)."""
    _check_fraction(f)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    best_r = 1.0
    best = symmetric_speedup(f, n, 1.0)
    steps = 512
    for k in range(1, steps + 1):
        r = 1.0 + (n - 1.0) * k / steps
        s = symmetric_speedup(f, n, r)
        if s > best:
            best, best_r = s, r
    return best_r


@dataclass(frozen=True)
class CombinedDesignPoint:
    """A symmetric CMP evaluated under both constraints.

    Attributes
    ----------
    amdahl_cores:
        Cores the die could hold if only area mattered (``n / r`` minus
        the cache allocation is *not* deducted here — Hill & Marty spend
        the whole die on cores).
    bandwidth_cores:
        Cores the bandwidth wall admits on the same die (cache gets the
        remainder), from :class:`BandwidthWallModel`.
    usable_cores:
        ``min`` of the two — what a designer can actually populate.
    speedup:
        Hill-Marty symmetric speedup evaluated at ``usable_cores``.
    binding_constraint:
        ``"bandwidth"`` or ``"parallelism"`` (or ``"tie"``).
    """

    parallel_fraction: float
    total_ceas: float
    amdahl_cores: float
    bandwidth_solution: ScalingSolution

    @property
    def bandwidth_cores(self) -> float:
        return self.bandwidth_solution.continuous_cores

    @property
    def usable_cores(self) -> float:
        return min(self.amdahl_cores, self.bandwidth_cores)

    @property
    def binding_constraint(self) -> str:
        if math.isclose(self.amdahl_cores, self.bandwidth_cores,
                        rel_tol=1e-9):
            return "tie"
        if self.bandwidth_cores < self.amdahl_cores:
            return "bandwidth"
        return "parallelism"

    @property
    def speedup(self) -> float:
        cores = max(self.usable_cores, 1.0)
        # Speedup of `cores` unit cores relative to one unit core.
        f = self.parallel_fraction
        return 1.0 / ((1 - f) + f / cores)


class CombinedWallModel:
    """Evaluate symmetric CMPs under Amdahl *and* the bandwidth wall.

    Parameters
    ----------
    wall:
        The bandwidth-wall model (baseline chip + alpha).
    parallel_fraction:
        Hill & Marty's ``f``.

    Examples
    --------
    >>> from repro.core import paper_baseline_model
    >>> combined = CombinedWallModel(paper_baseline_model(), 0.99)
    >>> point = combined.design_point(256)
    >>> point.binding_constraint
    'bandwidth'
    """

    def __init__(self, wall: BandwidthWallModel,
                 parallel_fraction: float) -> None:
        _check_fraction(parallel_fraction)
        self.wall = wall
        self.parallel_fraction = parallel_fraction

    def design_point(
        self,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
        core_bces: float = 1.0,
    ) -> CombinedDesignPoint:
        """Evaluate one die size under both constraints."""
        if core_bces < 1:
            raise ValueError(f"core_bces must be >= 1, got {core_bces}")
        solution = self.wall.supportable_cores(
            total_ceas, traffic_budget=traffic_budget, effect=effect
        )
        # Amdahl-optimal core count: with f < 1 there is a point past
        # which extra cores add ~nothing; we report the area bound n/r,
        # the knee is visible through `speedup`.
        amdahl_cores = total_ceas / core_bces
        return CombinedDesignPoint(
            parallel_fraction=self.parallel_fraction,
            total_ceas=total_ceas,
            amdahl_cores=amdahl_cores,
            bandwidth_solution=solution,
        )

    def crossover_fraction(
        self,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
        tolerance: float = 1e-6,
    ) -> Optional[float]:
        """The parallel fraction at which the two constraints deliver
        equal *speedup-limited* core value.

        Below the returned ``f``, software parallelism is the binding
        limit (extra cores beyond Amdahl's knee are worthless anyway);
        above it, the bandwidth wall binds first.  Returns ``None`` when
        the wall binds for every ``f`` (its core bound is below the
        point where even ``f = 1`` saturates).

        Concretely, solves for the ``f`` where the marginal speedup of
        growing from the wall-limited core count to the area-limited
        count drops under 1%.
        """
        point = self.design_point(
            total_ceas, traffic_budget=traffic_budget, effect=effect
        )
        wall_cores = point.bandwidth_cores
        area_cores = point.amdahl_cores
        if wall_cores >= area_cores:
            return None

        def marginal_gain(f: float) -> float:
            s_wall = 1.0 / ((1 - f) + f / wall_cores)
            s_area = 1.0 / ((1 - f) + f / area_cores)
            return s_area / s_wall - 1.0

        # marginal_gain is increasing in f: more parallelism, more value
        # in the cores the wall denies us.
        lo, hi = 0.0, 1.0
        if marginal_gain(hi) < 0.01:
            return None
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if marginal_gain(mid) < 0.01:
                lo = mid
            else:
                hi = mid
            if hi - lo < tolerance:
                break
        return 0.5 * (lo + hi)

"""Core-count scaling under a memory-traffic budget (Section 5).

Given a balanced baseline CMP, a die grown by some technology-scaling
factor, a traffic budget ``B`` (how much the bandwidth envelope grows),
and optionally a stack of bandwidth-conservation techniques, the solver
answers the paper's central question: *how many cores can the new chip
support without exceeding the traffic budget?*

The governing equation generalises Equation 7 to all techniques:

.. math::
   \\frac{P_2}{P_1} \\cdot
   \\left(\\frac{S^{\\mathrm{eff}}_2(P_2)}{S_1}\\right)^{-\\alpha}
   = B \\cdot t

where ``t`` is the technique stack's direct traffic factor and
``S_eff`` folds in effective-capacity multipliers, DRAM density, 3D
layers and core-size changes (see
:meth:`repro.core.techniques.TechniqueEffect.effective_cache_ceas`).
The left side is strictly increasing in ``P2``, so a bisection solve is
exact for practical purposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from . import memo
from .area import ChipDesign
from .solver import BracketError, floor_cores, solve_increasing
from .techniques import NEUTRAL_EFFECT, TechniqueEffect

__all__ = [
    "ScalingSolution",
    "BandwidthWallModel",
    "GenerationPoint",
    "PAPER_GENERATION_FACTORS",
]

#: The four future technology generations the paper evaluates
#: (2x, 4x, 8x, 16x the baseline transistor budget).
PAPER_GENERATION_FACTORS = (2.0, 4.0, 8.0, 16.0)


@dataclass(frozen=True)
class ScalingSolution:
    """The outcome of one supportable-core-count solve.

    Attributes
    ----------
    continuous_cores:
        The exact (real-valued) solution ``P2`` of the traffic equation.
    cores:
        ``floor(continuous_cores)`` — the buildable integer count the
        paper reports.
    design:
        The resulting die split, with the continuous core count.
    effective_cache_per_core:
        ``S2_eff`` in SRAM-equivalent CEAs at the continuous solution.
    traffic_budget:
        The budget (relative to baseline traffic) the solve targeted,
        *excluding* technique traffic factors.
    area_limited:
        True when the traffic budget permits more cores than physically
        fit on the die, so the result is capped by area rather than by
        bandwidth (possible with 3D stacks and very small cores).
    """

    continuous_cores: float
    design: ChipDesign
    effective_cache_per_core: float
    traffic_budget: float
    area_limited: bool = False

    @property
    def cores(self) -> int:
        return floor_cores(self.continuous_cores)

    @property
    def core_area_share(self) -> float:
        """Fraction of the (processor) die occupied by cores."""
        return self.design.core_area_share


@dataclass(frozen=True)
class BandwidthWallModel:
    """The paper's analytical model, bound to a baseline CMP and workload.

    Parameters
    ----------
    baseline:
        The balanced current-generation design (the paper uses a
        Niagara2-like 8-core / 8-cache-CEA, 16-CEA chip).
    alpha:
        Workload cache sensitivity (0.5 for the average commercial
        workload).

    Examples
    --------
    >>> from repro.core.area import ChipDesign
    >>> model = BandwidthWallModel(ChipDesign(16, 8), alpha=0.5)
    >>> model.supportable_cores(32).cores        # Figure 2's crossing
    11
    >>> model.supportable_cores(256).cores       # four generations out
    24
    """

    baseline: ChipDesign
    alpha: float = 0.5

    def __post_init__(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha <= 0:
            raise ValueError(f"alpha must be positive and finite, got {self.alpha}")
        if self.baseline.cache_per_core <= 0:
            raise ValueError("baseline design must include cache")

    # ------------------------------------------------------------------
    # Traffic as a function of a candidate configuration
    # ------------------------------------------------------------------

    def relative_traffic(
        self,
        total_ceas: float,
        cores: float,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> float:
        """``M2 / M1`` for ``cores`` on a ``total_ceas`` die with ``effect``.

        The technique's *direct* traffic factor divides the generated
        traffic (compressed bytes cross the link), so it appears here as
        a division; the capacity/density/stacking terms enter through the
        effective cache per core.
        """
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        s2 = effect.effective_cache_ceas(total_ceas, cores) / cores
        if s2 <= 0:
            return math.inf
        p1 = self.baseline.num_cores
        s1 = self.baseline.cache_per_core
        return (cores / p1) * (s2 / s1) ** (-self.alpha) / effect.traffic_factor

    # ------------------------------------------------------------------
    # The central solve
    # ------------------------------------------------------------------

    def supportable_cores(
        self,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> ScalingSolution:
        """Solve for the largest core count within the traffic budget.

        Parameters
        ----------
        total_ceas:
            ``N2`` — the die size of the target generation, in CEAs.
        traffic_budget:
            ``B`` — allowed growth of total memory traffic relative to
            the baseline chip (1.0 keeps traffic constant).
        effect:
            Combined effect of any bandwidth-conservation techniques.
        """
        self.validate_query(total_ceas, traffic_budget)

        # The solve is a pure function of this fully-immutable key, so a
        # process-global memo table (see repro.core.memo) can serve
        # repeated grid points without re-running the bisection.
        cache = memo.active_cache()
        key: Optional[memo.ModelKey] = None
        if cache is not None:
            key = self._memo_key(total_ceas, traffic_budget, effect)
            cached = cache.lookup(key)
            if cached is not None:
                return cached

        from . import vectorized

        if vectorized.mode() == "force" and vectorized.has_numpy():
            # The differential test mode: even single solves run through
            # the batch kernel, proving it byte-identical on every code
            # path that reaches supportable_cores.
            solution = vectorized.solve_batch(
                self, [(total_ceas, traffic_budget, effect)]
            )[0]
        else:
            solution = self.solve_point(total_ceas, traffic_budget, effect)
        if cache is not None and key is not None:
            cache.store(key, solution)
        return solution

    def supportable_cores_batch(
        self,
        queries: Sequence[Tuple[float, float, TechniqueEffect]],
    ) -> List[ScalingSolution]:
        """Solve many ``(total_ceas, traffic_budget, effect)`` queries.

        Semantically identical — bit-for-bit, including exceptions — to
        calling :meth:`supportable_cores` once per query in order, but
        memo lookups and stores happen in bulk and cache misses are
        solved together through the vectorized batch kernel
        (:mod:`repro.core.vectorized`) when numpy is available and the
        miss count warrants it.  The sweep engine, the service's
        ``/v1/sweep`` and the jobs executor all funnel their grids
        through here.
        """
        from . import vectorized

        queries = list(queries)
        for total_ceas, traffic_budget, _ in queries:
            self.validate_query(total_ceas, traffic_budget)
        cache = memo.active_cache()
        if cache is None:
            if vectorized.use_batch(len(queries)):
                return vectorized.solve_batch(self, queries)
            return [self.solve_point(*query) for query in queries]
        keys = [self._memo_key(*query) for query in queries]
        solutions = cache.lookup_many(keys)
        miss_indices = [i for i, hit in enumerate(solutions) if hit is None]
        if miss_indices:
            misses = [queries[i] for i in miss_indices]
            if vectorized.use_batch(len(misses)):
                solved = vectorized.solve_batch(self, misses)
            else:
                solved = [self.solve_point(*query) for query in misses]
            cache.store_many(
                (keys[i], solution)
                for i, solution in zip(miss_indices, solved)
            )
            for i, solution in zip(miss_indices, solved):
                solutions[i] = solution
        return solutions

    # -- solve internals (shared with repro.core.vectorized) -----------

    def validate_query(self, total_ceas: float, traffic_budget: float) -> None:
        """Reject malformed solve inputs with the canonical messages."""
        if total_ceas <= 0:
            raise ValueError(f"total_ceas must be positive, got {total_ceas}")
        if traffic_budget <= 0:
            raise ValueError(
                f"traffic_budget must be positive, got {traffic_budget}"
            )

    def _memo_key(
        self,
        total_ceas: float,
        traffic_budget: float,
        effect: TechniqueEffect,
    ) -> memo.ModelKey:
        return memo.ModelKey(
            baseline=self.baseline,
            alpha=self.alpha,
            total_ceas=total_ceas,
            traffic_budget=traffic_budget,
            effect=effect,
        )

    def solve_point(
        self,
        total_ceas: float,
        traffic_budget: float,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> ScalingSolution:
        """One bisection solve, bypassing memo and batch dispatch.

        The scalar reference path: the vectorized kernel replays its
        arithmetic and delegates its own guard failures here.
        """
        self.validate_query(total_ceas, traffic_budget)
        max_cores = total_ceas / effect.core_area_fraction

        def traffic(p2: float) -> float:
            return self.relative_traffic(total_ceas, p2, effect)

        try:
            p2 = solve_increasing(traffic, traffic_budget, 0.0, max_cores)
            area_limited = False
        except BracketError:
            # Traffic at full-die core allocation is still inside budget:
            # the design is limited by area, not bandwidth.  (The opposite
            # failure — traffic over budget even for one core — cannot
            # happen for budgets >= the single-core traffic, and for
            # pathological tiny budgets we surface it.)
            if traffic(max_cores * (1 - 1e-12)) < traffic_budget:
                p2 = max_cores
                area_limited = True
            else:
                raise
        return self.finish_solution(
            total_ceas, traffic_budget, effect, p2, area_limited
        )

    def finish_solution(
        self,
        total_ceas: float,
        traffic_budget: float,
        effect: TechniqueEffect,
        p2: float,
        area_limited: bool,
    ) -> ScalingSolution:
        """Package a solved core count into a :class:`ScalingSolution`.

        Single-sourced so batch-solved roots produce solutions whose
        derived fields round exactly as scalar-solved ones.
        """
        design = ChipDesign(
            total_ceas=total_ceas,
            core_ceas=p2,
            core_area_fraction=effect.core_area_fraction,
        )
        s_eff = effect.effective_cache_ceas(total_ceas, p2) / p2
        return ScalingSolution(
            continuous_cores=p2,
            design=design,
            effective_cache_per_core=s_eff,
            traffic_budget=traffic_budget,
            area_limited=area_limited,
        )

    # ------------------------------------------------------------------
    # Multi-generation studies (Figures 3, 15, 16, 17)
    # ------------------------------------------------------------------

    def generation_study(
        self,
        *,
        scaling_factors: Sequence[float] = PAPER_GENERATION_FACTORS,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
        bandwidth_growth_per_generation: float = 1.0,
    ) -> List["GenerationPoint"]:
        """Supportable cores for each future generation.

        ``bandwidth_growth_per_generation`` compounds: a value ``g``
        allows traffic ``g**k`` at the generation whose area factor is
        ``2**k``.  The paper's constant-traffic studies use ``g = 1``.
        """
        points = []
        for factor in scaling_factors:
            generations = math.log2(factor)
            budget = bandwidth_growth_per_generation**generations
            solution = self.supportable_cores(
                self.baseline.total_ceas * factor,
                traffic_budget=budget,
                effect=effect,
            )
            ideal = self.baseline.num_cores * factor
            points.append(
                GenerationPoint(
                    area_factor=factor,
                    solution=solution,
                    ideal_cores=ideal,
                )
            )
        return points

    def with_alpha(self, alpha: float) -> "BandwidthWallModel":
        """Return a copy of this model for a different workload alpha."""
        return BandwidthWallModel(baseline=self.baseline, alpha=alpha)


@dataclass(frozen=True)
class GenerationPoint:
    """One generation's outcome in a multi-generation study."""

    area_factor: float
    solution: ScalingSolution
    ideal_cores: float

    @property
    def cores(self) -> int:
        return self.solution.cores

    @property
    def shortfall(self) -> float:
        """Ideal minus achieved cores (the "growing gap" of Figure 15)."""
        return self.ideal_cores - self.solution.continuous_cores

    @property
    def is_super_proportional(self) -> bool:
        """True when the technique beats proportional scaling."""
        return self.solution.continuous_cores > self.ideal_cores

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return (
            f"{self.area_factor:>4.0f}x: {self.cores:>4d} cores "
            f"(ideal {self.ideal_cores:.0f})"
        )

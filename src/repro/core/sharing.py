"""Inter-thread data sharing and its effect on traffic (Section 6.3).

With a fraction ``f_sh`` of cached data shared by *all* threads and a
shared L2, the chip behaves as if only

.. math::  P' = f_{sh} + (1 - f_{sh}) \\cdot P

independent cores generated traffic and working sets (Equations 13-14):
one fetcher covers the shared data, ``(1 - f_sh) * P`` fetchers cover the
private data.  Shared lines are stored once, so the per-core cache grows
to ``C / P'`` as well.

With *private* L2s (the paper's footnote 1) a shared block is replicated
in every private cache, so only the traffic side benefits: per-core cache
capacity stays ``C / P``.

The module answers both of the paper's questions:

* the Figure 13 sweep — normalized traffic as a function of ``f_sh`` for
  a proportionally-scaled core count, and
* the headline inversion — the sharing fraction *required* to keep
  traffic constant under proportional scaling (40% / 63% / 77% / 86% for
  16 / 32 / 64 / 128 cores).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .area import ChipDesign
from .solver import solve_increasing

__all__ = ["DataSharingModel"]


@dataclass(frozen=True)
class DataSharingModel:
    """Traffic model for multi-threaded workloads with shared data.

    Parameters
    ----------
    baseline:
        The balanced baseline CMP (threads assumed independent there).
    alpha:
        Power-law exponent of the workload.
    shared_cache:
        True (paper's main analysis) models one shared L2: sharing helps
        both traffic and capacity.  False models private L2s (footnote
        1): sharing helps traffic only.
    """

    baseline: ChipDesign
    alpha: float = 0.5
    shared_cache: bool = True

    def __post_init__(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha <= 0:
            raise ValueError(f"alpha must be positive and finite, got {self.alpha}")

    def independent_cores(self, cores: float, shared_fraction: float) -> float:
        """``P'`` of Equation 14 — effective independent fetchers."""
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        if not 0 <= shared_fraction <= 1:
            raise ValueError(
                f"shared_fraction must be in [0, 1], got {shared_fraction}"
            )
        return shared_fraction + (1.0 - shared_fraction) * cores

    def relative_traffic(
        self,
        total_ceas: float,
        cores: float,
        shared_fraction: float,
    ) -> float:
        """``M2 / M1`` for a design with data sharing (Equation 13)."""
        cache_ceas = total_ceas - cores
        if cache_ceas <= 0:
            raise ValueError(
                f"{cores} cores leave no cache on a {total_ceas}-CEA die"
            )
        p_eff = self.independent_cores(cores, shared_fraction)
        capacity_divisor = p_eff if self.shared_cache else cores
        s2 = cache_ceas / capacity_divisor
        p1 = self.baseline.num_cores
        s1 = self.baseline.cache_per_core
        return (p_eff / p1) * (s2 / s1) ** (-self.alpha)

    def traffic_sweep(
        self,
        total_ceas: float,
        cores: float,
        shared_fractions: Sequence[float],
    ) -> List[Tuple[float, float]]:
        """The Figure 13 curves: ``(f_sh, normalized traffic)`` pairs."""
        return [
            (f, self.relative_traffic(total_ceas, cores, f))
            for f in shared_fractions
        ]

    def required_sharing_fraction(
        self,
        total_ceas: float,
        cores: float,
        *,
        traffic_budget: float = 1.0,
    ) -> float:
        """Smallest ``f_sh`` that keeps traffic within the budget.

        Traffic is strictly decreasing in ``f_sh`` (more sharing, fewer
        independent fetchers), so we solve the increasing function
        ``f -> -traffic`` by bisection.  Returns 0.0 when no sharing is
        needed; raises if even full sharing cannot meet the budget.
        """
        if traffic_budget <= 0:
            raise ValueError(
                f"traffic_budget must be positive, got {traffic_budget}"
            )
        if self.relative_traffic(total_ceas, cores, 0.0) <= traffic_budget:
            return 0.0
        if self.relative_traffic(total_ceas, cores, 1.0) > traffic_budget:
            raise ValueError(
                f"even 100% sharing exceeds the traffic budget {traffic_budget} "
                f"for {cores} cores on {total_ceas} CEAs"
            )
        return solve_increasing(
            lambda f: -self.relative_traffic(total_ceas, cores, f),
            -traffic_budget,
            0.0,
            1.0,
        )

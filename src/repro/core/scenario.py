"""Custom scaling scenarios: one shared solve/render path for CLI and API.

A *scenario* is the paper's central what-if question asked for arbitrary
inputs: given a die size, a workload alpha, a traffic budget and a stack
of bandwidth-conservation techniques, how many cores does the design
support?  The CLI's ``solve`` command and the serving subsystem
(:mod:`repro.service`) both answer it through this module, so a solve
over HTTP is byte-identical to the same solve on a terminal: the
rendered text comes from :func:`render_scenario` in both cases, and the
numbers come from one :func:`solve_scenario` call through the memoized
solve path.

Technique specs use the CLI's ``LABEL[=VALUE]`` grammar (``DRAM=8``,
``CC/LC=2``, bare ``3D`` for the default parameter); see
:data:`TECHNIQUE_SPEC_PARSERS` for the labels and their defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .presets import paper_baseline_design
from .scaling import BandwidthWallModel, ScalingSolution
from .techniques import (
    CacheCompression,
    CacheLinkCompression,
    DRAMCache,
    LinkCompression,
    NEUTRAL_EFFECT,
    SectoredCache,
    SmallCacheLines,
    SmallerCores,
    Technique,
    TechniqueEffect,
    ThreeDStackedCache,
    UnusedDataFiltering,
)

__all__ = [
    "TECHNIQUE_SPEC_PARSERS",
    "parse_technique_spec",
    "ScenarioRequest",
    "ScenarioOutcome",
    "solve_scenario",
    "render_scenario",
    "scenario_payload",
]

#: label -> constructor taking the optional ``LABEL=value`` parameter.
TECHNIQUE_SPEC_PARSERS = {
    "CC": lambda value: CacheCompression(float(value or 2.0)),
    "DRAM": lambda value: DRAMCache(float(value or 8.0)),
    "3D": lambda value: ThreeDStackedCache(float(value or 1.0)),
    "Fltr": lambda value: UnusedDataFiltering(float(value or 0.4)),
    "SmCo": lambda value: SmallerCores(1.0 / float(value or 40.0)),
    "LC": lambda value: LinkCompression(float(value or 2.0)),
    "Sect": lambda value: SectoredCache(float(value or 0.4)),
    "SmCl": lambda value: SmallCacheLines(float(value or 0.4)),
    "CC/LC": lambda value: CacheLinkCompression(float(value or 2.0)),
}


def parse_technique_spec(spec: str) -> Technique:
    """Parse ``LABEL`` or ``LABEL=value`` into a Technique.

    Raises :class:`ValueError` with a message that names the offending
    label, so both the CLI and the API surface the same diagnostics.
    """
    label, _, value = spec.partition("=")
    label = label.strip()
    if label not in TECHNIQUE_SPEC_PARSERS:
        raise ValueError(
            f"unknown technique {label!r}; choose from "
            f"{sorted(TECHNIQUE_SPEC_PARSERS)}"
        )
    try:
        return TECHNIQUE_SPEC_PARSERS[label](value.strip() or None)
    except ValueError as error:
        raise ValueError(f"bad parameter for {label}: {error}") from None


@dataclass(frozen=True)
class ScenarioRequest:
    """One custom scaling question, in CLI-flag terms."""

    ceas: float = 32.0
    alpha: float = 0.5
    budget: float = 1.0
    techniques: Tuple[str, ...] = ()

    def combined_effect(self) -> Tuple[TechniqueEffect, Tuple[str, ...]]:
        """Fold the technique specs into one effect plus their labels."""
        effect = NEUTRAL_EFFECT
        labels: List[str] = []
        for spec in self.techniques:
            technique = parse_technique_spec(spec)
            effect = effect.combine(technique.effect())
            labels.append(technique.label)
        return effect, tuple(labels)


@dataclass(frozen=True)
class ScenarioOutcome:
    """A solved scenario: the request, its solution and the comparison."""

    request: ScenarioRequest
    labels: Tuple[str, ...]
    solution: ScalingSolution
    proportional_cores: float

    @property
    def verdict(self) -> str:
        """Paper-style comparison against proportional core scaling."""
        return ("super-proportional"
                if self.solution.continuous_cores > self.proportional_cores
                else "sub-proportional")


def solve_scenario(request: ScenarioRequest) -> ScenarioOutcome:
    """Solve one scenario through the memoized bandwidth-wall model.

    Raises :class:`ValueError` on bad technique specs, structural
    technique conflicts, or out-of-range alpha/ceas/budget — the same
    exceptions, with the same messages, whichever frontend asked.
    """
    effect, labels = request.combined_effect()
    baseline = paper_baseline_design()
    model = BandwidthWallModel(baseline, alpha=request.alpha)
    solution = model.supportable_cores(
        request.ceas, traffic_budget=request.budget, effect=effect
    )
    proportional = (baseline.num_cores * request.ceas
                    / baseline.total_ceas)
    return ScenarioOutcome(
        request=request,
        labels=labels,
        solution=solution,
        proportional_cores=proportional,
    )


def render_scenario(outcome: ScenarioOutcome) -> str:
    """The CLI ``solve`` report for one outcome (trailing newline kept).

    This is the single source of the human-readable form; the API's
    ``text`` field and the CLI's stdout are this exact string.
    """
    request, solution = outcome.request, outcome.solution
    stack_label = " + ".join(outcome.labels) if outcome.labels else "none"
    lines = [
        f"baseline      : 8 cores + 8 cache CEAs, alpha={request.alpha}",
        f"die           : {request.ceas:g} CEAs, traffic budget "
        f"{request.budget:g}x",
        f"techniques    : {stack_label}",
        f"cores         : {solution.cores} "
        f"(continuous {solution.continuous_cores:.2f})",
        f"core area     : {solution.core_area_share:.1%} of die",
        f"cache/core    : {solution.effective_cache_per_core:.2f} "
        "SRAM-equivalent CEAs",
    ]
    if solution.area_limited:
        lines.append(
            "note          : area limited — the traffic budget would "
            "admit more cores than fit"
        )
    lines.append(
        f"vs proportional ({outcome.proportional_cores:g} cores): "
        f"{outcome.verdict}"
    )
    return "\n".join(lines) + "\n"


def scenario_payload(outcome: ScenarioOutcome) -> dict:
    """JSON-ready structured form of one outcome (the API response body)."""
    request, solution = outcome.request, outcome.solution
    return {
        "request": {
            "ceas": request.ceas,
            "alpha": request.alpha,
            "budget": request.budget,
            "techniques": list(request.techniques),
        },
        "techniques": list(outcome.labels),
        "solution": {
            "cores": solution.cores,
            "continuous_cores": solution.continuous_cores,
            "core_area_share": solution.core_area_share,
            "effective_cache_per_core": solution.effective_cache_per_core,
            "traffic_budget": solution.traffic_budget,
            "area_limited": solution.area_limited,
        },
        "proportional_cores": outcome.proportional_cores,
        "verdict": outcome.verdict,
        "text": render_scenario(outcome),
    }

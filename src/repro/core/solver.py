"""Root solving utilities for the scaling model.

All of the paper's "how many cores can the next generation support?"
questions reduce to solving ``traffic(P2) = budget`` for ``P2``, where
``traffic`` is strictly increasing in ``P2`` on the feasible interval
(more cores both multiply the per-core traffic and shrink the cache each
core gets).  A guarded bisection solver is all we need, and it is immune
to the poles at the interval edges that would upset Newton iterations.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = ["solve_increasing", "floor_cores", "BracketError"]

#: Tolerance used when flooring a continuous core count to an integer, so
#: that analytically-exact landings (e.g. the 3D DRAM 16x case solving to
#: exactly 32.0) are not floored down by floating-point noise.
_FLOOR_EPS = 1e-9


class BracketError(ValueError):
    """Raised when the requested root does not lie in the given interval.

    Besides a message that names the requested interval, the probed
    point and the target, the exception carries the same facts as
    structured attributes so callers (and tests) do not need to parse
    the message:

    Attributes
    ----------
    lo, hi:
        The requested bracket, exactly as passed to
        :func:`solve_increasing`.
    target:
        The value the solve was asked to reach.
    endpoint:
        ``"lo"`` when the function already exceeds the target at the
        lower end of the interval, ``"hi"`` when it stays below the
        target at the upper end.
    evaluated_at:
        The abscissa actually probed (slightly inside the interval; the
        solver never evaluates the exact endpoints).
    value:
        ``func(evaluated_at)``.
    """

    def __init__(
        self,
        message: str,
        *,
        lo: float = math.nan,
        hi: float = math.nan,
        target: float = math.nan,
        endpoint: str = "",
        evaluated_at: float = math.nan,
        value: float = math.nan,
    ) -> None:
        super().__init__(message)
        self.lo = lo
        self.hi = hi
        self.target = target
        self.endpoint = endpoint
        self.evaluated_at = evaluated_at
        self.value = value


def solve_increasing(
    func: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Solve ``func(x) = target`` for an increasing ``func`` on ``[lo, hi]``.

    Parameters
    ----------
    func:
        A function that is (weakly) increasing on the open interval.  It
        may diverge at the endpoints; the solver only evaluates strictly
        inside ``(lo, hi)`` after checking the bracket.
    target:
        The value to solve for.
    lo, hi:
        Bracket endpoints, ``lo < hi``.
    tol:
        Absolute tolerance on ``x``.

    Returns
    -------
    float
        The root, or ``hi`` if ``func`` stays below ``target`` on the
        whole interval is *not* silently returned — a
        :class:`BracketError` is raised instead so callers can decide how
        to cap (e.g. "area limited" designs).

    Raises
    ------
    BracketError
        If the target is not bracketed by ``func`` on ``(lo, hi)``.
    """
    if not lo < hi:
        raise ValueError(f"need lo < hi, got lo={lo}, hi={hi}")
    if not math.isfinite(target):
        raise ValueError(f"target must be finite, got {target}")

    # Evaluate slightly inside the interval; the traffic functions have a
    # pole (infinite traffic at zero cache) at one end and a zero at the
    # other, so the open interval always brackets any positive target when
    # a solution exists.
    span = hi - lo
    a = lo + span * 1e-12
    b = hi - span * 1e-12
    fa = func(a)
    fb = func(b)
    if fa > target:
        raise BracketError(
            f"no root in [{lo}, {hi}]: func({a}) = {fa} already exceeds "
            f"target {target} at the lower endpoint",
            lo=lo, hi=hi, target=target, endpoint="lo",
            evaluated_at=a, value=fa,
        )
    if fb < target:
        raise BracketError(
            f"no root in [{lo}, {hi}]: func({b}) = {fb} stays below "
            f"target {target} at the upper endpoint",
            lo=lo, hi=hi, target=target, endpoint="hi",
            evaluated_at=b, value=fb,
        )

    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        fm = func(mid)
        if fm < target:
            a = mid
        else:
            b = mid
        if b - a <= tol:
            break
    return 0.5 * (a + b)


def floor_cores(p: float) -> int:
    """Floor a continuous core count to a buildable integer count.

    The paper reports integer core counts obtained by flooring the
    continuous solution (e.g. 11.03 -> 11, 24.5 -> 24).  A small epsilon
    keeps analytically exact solutions (32.0 computed as 31.999999...)
    from losing a core to round-off.

    Non-finite and negative inputs are rejected with :class:`ValueError`
    (``math.floor`` alone would raise an input-dependent mix of
    ``ValueError`` and ``OverflowError`` for NaN and the infinities).
    """
    if not math.isfinite(p):
        raise ValueError(f"core count must be finite, got {p}")
    if p < 0:
        raise ValueError(f"core count must be non-negative, got {p}")
    return int(math.floor(p + _FLOOR_EPS))

"""Power-constrained scaling: which wall bites first? (extension)

Section 3: "we do not evaluate the power implications of various CMP
configurations".  This module adds the missing constraint with a simple
but standard budget model, so the bandwidth wall can be compared
against the power wall on the same die:

    chip power(P, C) = P * core_power
                       + C * sram_leakage            (SRAM cache)
                       + C_dram * dram_refresh       (per effective CEA)
                       + overhead_fraction * budget  (uncore, IO)

Techniques interact with power in signature ways the model captures:

* DRAM caches trade SRAM leakage for refresh power across *denser*
  capacity;
* smaller cores cut per-core power roughly with area (simple in-order
  cores);
* compression engines add a fixed per-CEA tax on the cache they cover.

:class:`PowerAwareWallModel` solves both constraints and reports which
binds — the dark-silicon conversation, grafted onto the paper's model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .scaling import BandwidthWallModel
from .solver import BracketError, solve_increasing
from .techniques import NEUTRAL_EFFECT, TechniqueEffect

__all__ = ["PowerParameters", "PowerAwareWallModel", "PowerAwarePoint"]


@dataclass(frozen=True)
class PowerParameters:
    """Chip power accounting, in watts (defaults are Niagara2-flavoured:
    ~72 W for the baseline 8-core/8-CEA chip at these numbers).

    Parameters
    ----------
    core_watts:
        Dynamic + static power of one full-size active core.
    sram_watts_per_cea:
        Leakage + access power per CEA of SRAM cache.
    dram_watts_per_effective_cea:
        Refresh + access power per SRAM-equivalent CEA of DRAM cache
        (DRAM trades much lower per-bit leakage for refresh).
    budget_watts:
        The socket's power envelope.
    core_power_area_exponent:
        How core power scales with core area for smaller cores
        (1.0 = proportional to area; in-order cores land near that).
    """

    core_watts: float = 8.0
    sram_watts_per_cea: float = 1.0
    dram_watts_per_effective_cea: float = 0.25
    budget_watts: float = 120.0
    core_power_area_exponent: float = 1.0

    def __post_init__(self) -> None:
        for name in ("core_watts", "sram_watts_per_cea",
                     "dram_watts_per_effective_cea", "budget_watts"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.budget_watts <= 0:
            raise ValueError("budget_watts must be positive")
        if self.core_power_area_exponent < 0:
            raise ValueError("core_power_area_exponent must be >= 0")

    def core_power(self, core_area_fraction: float) -> float:
        """Power of one core occupying ``core_area_fraction`` CEAs."""
        if not 0 < core_area_fraction <= 1:
            raise ValueError(
                "core_area_fraction must be in (0, 1], got "
                f"{core_area_fraction}"
            )
        return self.core_watts * core_area_fraction ** (
            self.core_power_area_exponent
        )

    def scaled(self, per_unit_factor: float) -> "PowerParameters":
        """Per-CEA power scaled by ``per_unit_factor`` (same budget).

        Models the post-Dennard residual: each process generation cuts
        power per transistor by some factor < 1 (historically ~0.5 under
        Dennard scaling, ~0.7-0.8 since), while the socket budget stays
        put.  ``per_unit_factor`` compounds across generations.
        """
        if per_unit_factor <= 0:
            raise ValueError(
                f"per_unit_factor must be positive, got {per_unit_factor}"
            )
        return PowerParameters(
            core_watts=self.core_watts * per_unit_factor,
            sram_watts_per_cea=self.sram_watts_per_cea * per_unit_factor,
            dram_watts_per_effective_cea=(
                self.dram_watts_per_effective_cea * per_unit_factor
            ),
            budget_watts=self.budget_watts,
            core_power_area_exponent=self.core_power_area_exponent,
        )


@dataclass(frozen=True)
class PowerAwarePoint:
    """Both constraints evaluated on one die."""

    bandwidth_cores: float
    power_cores: float

    @property
    def cores(self) -> float:
        return min(self.bandwidth_cores, self.power_cores)

    @property
    def binding_constraint(self) -> str:
        if math.isclose(self.bandwidth_cores, self.power_cores,
                        rel_tol=1e-9):
            return "tie"
        return ("power" if self.power_cores < self.bandwidth_cores
                else "bandwidth")


class PowerAwareWallModel:
    """Solve core counts under the traffic budget AND the power budget."""

    def __init__(self, wall: BandwidthWallModel,
                 power: PowerParameters) -> None:
        self.wall = wall
        self.power = power

    def chip_power(
        self,
        total_ceas: float,
        cores: float,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> float:
        """Watts for ``cores`` on a ``total_ceas`` die with ``effect``."""
        if cores <= 0:
            raise ValueError(f"cores must be positive, got {cores}")
        params = self.power
        die_cache = total_ceas - effect.core_area_fraction * cores
        if die_cache < 0:
            raise ValueError("cores exceed the die")
        watts = cores * params.core_power(effect.core_area_fraction)
        if effect.on_die_density > 1.0:
            # DRAM cache: refresh power scales with *effective* capacity
            watts += (die_cache * effect.on_die_density
                      * params.dram_watts_per_effective_cea)
        else:
            watts += die_cache * params.sram_watts_per_cea
        if effect.stacked_layers:
            density = effect.resolved_stacked_density
            if density > 1.0:
                watts += (effect.stacked_layers * total_ceas * density
                          * params.dram_watts_per_effective_cea)
            else:
                watts += (effect.stacked_layers * total_ceas
                          * params.sram_watts_per_cea)
        return watts

    def power_limited_cores(
        self,
        total_ceas: float,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> float:
        """Largest core count whose chip power fits the budget.

        Chip power is increasing in the core count whenever a core burns
        more than the cache it displaces — true for every parameter set
        of interest; validated and solved by bisection.
        """
        max_cores = total_ceas / effect.core_area_fraction
        budget = self.power.budget_watts

        def watts(cores: float) -> float:
            return self.chip_power(total_ceas, cores, effect)

        lo_power = watts(max_cores * 1e-9)
        if lo_power > budget:
            # Dark silicon: even an (almost) cache-only fully-lit die
            # exceeds the envelope; no all-active configuration exists.
            return 0.0
        core_unit = self.power.core_power(effect.core_area_fraction)
        cache_unit = (self.power.sram_watts_per_cea
                      if effect.on_die_density <= 1.0
                      else effect.on_die_density
                      * self.power.dram_watts_per_effective_cea)
        if core_unit <= cache_unit * effect.core_area_fraction:
            # Cores are cheaper than the cache they displace: power can
            # only fall as cores grow, so area is the limit.
            return max_cores
        try:
            return solve_increasing(watts, budget, 0.0, max_cores)
        except BracketError:
            return max_cores

    def design_point(
        self,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> PowerAwarePoint:
        """Evaluate both walls on one die."""
        bandwidth = self.wall.supportable_cores(
            total_ceas, traffic_budget=traffic_budget, effect=effect
        ).continuous_cores
        power = self.power_limited_cores(total_ceas, effect)
        return PowerAwarePoint(bandwidth_cores=bandwidth,
                               power_cores=power)

    def crossover_budget_watts(
        self,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> Optional[float]:
        """The power budget at which the two walls meet on this die.

        Below it, power binds; above it, bandwidth binds.  ``None`` when
        even unlimited power leaves bandwidth binding at the area cap.
        """
        bandwidth = self.wall.supportable_cores(
            total_ceas, traffic_budget=traffic_budget, effect=effect
        ).continuous_cores
        try:
            return self.chip_power(total_ceas, bandwidth, effect)
        except ValueError:
            return None

"""Multithreaded cores and the bandwidth wall (extension of Section 3).

The paper assumes single-threaded cores and notes the consequence: the
study "tends to underestimate the severity of the bandwidth wall ...
multiple threads running on a multi-threaded core tend to keep the core
less idle, and hence it is likely to generate more memory traffic per
unit time".  This module quantifies that: an SMT core with ``t``
hardware threads raises per-core traffic by a utilisation factor with
diminishing returns, and (with problem scaling) each extra thread also
brings its own working set, shrinking the effective cache per thread.

The model: a ``t``-way SMT core generates

.. math::  rate(t) = 1 + (t - 1) \\cdot \\eta

times the traffic of the single-threaded core (``eta`` = marginal
utilisation of each extra thread, < 1 because threads contend for the
pipeline), and the per-core cache is divided across ``t`` thread
working sets, multiplying per-thread misses by ``t^alpha`` — exactly
the sharing model's accounting with ``f_sh = 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .scaling import BandwidthWallModel, ScalingSolution
from .techniques import NEUTRAL_EFFECT, TechniqueEffect

__all__ = ["SMTParameters", "MultithreadedWallModel"]


@dataclass(frozen=True)
class SMTParameters:
    """How multithreading changes one core's traffic.

    Parameters
    ----------
    threads_per_core:
        Hardware threads (Niagara2: 8).
    marginal_utilisation:
        ``eta`` — traffic added by each extra thread relative to the
        first (0 = extra threads never issue, 1 = perfect scaling).
    shared_working_set:
        When True, threads on a core share one working set (no
        capacity penalty); when False (default, the paper's problem
        scaling) each thread brings its own.
    """

    threads_per_core: int = 2
    marginal_utilisation: float = 0.6
    shared_working_set: bool = False

    def __post_init__(self) -> None:
        if self.threads_per_core < 1:
            raise ValueError(
                f"threads_per_core must be >= 1, got {self.threads_per_core}"
            )
        if not 0 <= self.marginal_utilisation <= 1:
            raise ValueError(
                "marginal_utilisation must be in [0, 1], got "
                f"{self.marginal_utilisation}"
            )

    @property
    def traffic_rate(self) -> float:
        """Traffic per core relative to single-threaded."""
        return 1.0 + (self.threads_per_core - 1) * self.marginal_utilisation


class MultithreadedWallModel:
    """Bandwidth-wall solves for CMPs built from SMT cores."""

    def __init__(self, wall: BandwidthWallModel, smt: SMTParameters) -> None:
        self.wall = wall
        self.smt = smt

    def _capacity_penalty(self) -> float:
        """Effective cache shrink from per-thread working sets."""
        if self.smt.shared_working_set:
            return 1.0
        return 1.0 / self.smt.threads_per_core

    def supportable_cores(
        self,
        total_ceas: float,
        *,
        traffic_budget: float = 1.0,
        effect: TechniqueEffect = NEUTRAL_EFFECT,
    ) -> ScalingSolution:
        """Cores of SMT width ``t`` fitting the traffic budget.

        The SMT rate factor divides the budget (each core burns more of
        it per unit time), and the working-set split shrinks the
        effective cache — both folded into the existing solver.
        """
        combined = effect.combine(
            TechniqueEffect(capacity_factor=self._capacity_penalty())
        )
        return self.wall.supportable_cores(
            total_ceas,
            traffic_budget=traffic_budget / self.smt.traffic_rate,
            effect=combined,
        )

    def severity_vs_single_threaded(self, total_ceas: float) -> float:
        """How many fewer cores SMT admits, as a fraction.

        The paper's qualitative claim made quantitative: > 0 means the
        single-threaded study underestimates the wall.
        """
        single = self.wall.supportable_cores(total_ceas).continuous_cores
        smt = self.supportable_cores(total_ceas).continuous_cores
        return 1.0 - smt / single

    def throughput_proxy(self, total_ceas: float) -> float:
        """Chip work rate: cores x per-core utilisation factor.

        SMT cores each do more work; whether SMT wins under the wall
        depends on this product, not the core count alone.
        """
        solution = self.supportable_cores(total_ceas)
        return solution.continuous_cores * self.smt.traffic_rate

"""The CMP memory-traffic model (Section 4.2, Equations 3-5).

With ``P`` cores each owning ``S = C / P`` CEAs of cache and threads that
do not share data, every core generates miss and write-back traffic
independently, so chip traffic is

.. math::  M = P \\cdot M_0 \\cdot (S / S_0)^{-\\alpha}

Comparing two configurations (Equation 5):

.. math::
   M_2 = \\frac{P_2}{P_1} \\cdot
         \\left(\\frac{S_2}{S_1}\\right)^{-\\alpha} \\cdot M_1

The first factor accounts for the change in core count, the second for
the change in per-core cache.  :class:`TrafficRatio` exposes exactly that
decomposition, reproducing the paper's Section 4.2 worked example (8 -> 12
cores on a 16-CEA die: 2.6x total = 1.5x cores x 1.73x per-core traffic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .area import ChipDesign

__all__ = ["TrafficRatio", "TrafficModel"]


@dataclass(frozen=True)
class TrafficRatio:
    """Relative traffic between two designs, decomposed per Equation 5.

    Attributes
    ----------
    core_factor:
        ``P2 / P1`` — contribution of the change in core count.
    cache_factor:
        ``(S2 / S1) ** -alpha`` — contribution of the change in per-core
        cache capacity.
    """

    core_factor: float
    cache_factor: float

    @property
    def total(self) -> float:
        """``M2 / M1`` — the product of both factors."""
        return self.core_factor * self.cache_factor


@dataclass(frozen=True)
class TrafficModel:
    """Memory-traffic comparisons for CMP designs with sensitivity ``alpha``.

    Parameters
    ----------
    alpha:
        The power-law exponent of the workload (Section 4.1).

    Examples
    --------
    The Section 4.2 worked example:

    >>> from repro.core.area import ChipDesign
    >>> model = TrafficModel(alpha=0.5)
    >>> base = ChipDesign(total_ceas=16, core_ceas=8)
    >>> more_cores = ChipDesign(total_ceas=16, core_ceas=12)
    >>> ratio = model.relative_traffic(base, more_cores)
    >>> round(ratio.core_factor, 2), round(ratio.cache_factor, 2), round(ratio.total, 2)
    (1.5, 1.73, 2.6)
    """

    alpha: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.alpha) or self.alpha <= 0:
            raise ValueError(f"alpha must be positive and finite, got {self.alpha}")

    def relative_traffic(
        self,
        baseline: ChipDesign,
        candidate: ChipDesign,
        *,
        candidate_cache_per_core: float = None,
    ) -> TrafficRatio:
        """``M_candidate / M_baseline`` with its Equation 5 decomposition.

        Parameters
        ----------
        baseline, candidate:
            The two designs to compare.  The workload (``M0``, alpha) must
            be the same on both, which is the paper's standing assumption.
        candidate_cache_per_core:
            Override for the candidate's *effective* cache per core, in
            CEAs.  Bandwidth-conservation techniques (Section 6) inflate
            the effective capacity without changing the area; pass the
            inflated ``S2`` here and leave the design untouched.
        """
        s1 = baseline.cache_per_core
        s2 = (
            candidate.cache_per_core
            if candidate_cache_per_core is None
            else candidate_cache_per_core
        )
        if s1 <= 0:
            raise ValueError("baseline design has no cache; traffic is unbounded")
        if s2 <= 0:
            raise ValueError("candidate design has no cache; traffic is unbounded")
        core_factor = candidate.num_cores / baseline.num_cores
        cache_factor = (s2 / s1) ** (-self.alpha)
        return TrafficRatio(core_factor=core_factor, cache_factor=cache_factor)

    def traffic_vs_cores(
        self,
        baseline: ChipDesign,
        total_ceas: float,
        core_counts,
    ):
        """Traffic (relative to ``baseline``) for each core count on a die.

        This is the "New Traffic" curve of Figure 2: sweep ``P2`` on a die
        of ``total_ceas`` CEAs and report ``M2 / M1``.

        Returns a list of ``(core_count, traffic_ratio)`` pairs.
        """
        results = []
        for p2 in core_counts:
            if not 0 < p2 < total_ceas:
                raise ValueError(
                    f"core count {p2} leaves no room for cache on a "
                    f"{total_ceas}-CEA die"
                )
            candidate = ChipDesign(total_ceas=total_ceas, core_ceas=p2)
            results.append((p2, self.relative_traffic(baseline, candidate).total))
        return results

"""Bandwidth-conservation techniques (Section 6).

The paper sorts techniques into three categories:

* **indirect** — grow the *effective* cache capacity per core, cutting
  misses; their benefit is dampened by the ``-alpha`` exponent
  (cache compression, DRAM caches, 3D-stacked cache, unused-data
  filtering, smaller cores);
* **direct** — shrink the bytes that must cross the chip boundary per
  unit of work, or grow the usable boundary itself (link compression,
  sectored caches);
* **dual** — do both at once (smaller cache lines, cache+link
  compression).

Every technique here reduces to a :class:`TechniqueEffect`: a small
record of multiplicative and structural modifiers that the scaling solver
(:mod:`repro.core.scaling`) applies to the traffic equation.  This keeps
the solver single-sourced and makes technique *combinations*
(:mod:`repro.core.combos`) a fold over effects.

Parameter presets (pessimistic / realistic / optimistic) come straight
from Table 2 of the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "AssumptionLevel",
    "Category",
    "TechniqueEffect",
    "NEUTRAL_EFFECT",
    "Technique",
    "CacheCompression",
    "DRAMCache",
    "ThreeDStackedCache",
    "UnusedDataFiltering",
    "SmallerCores",
    "LinkCompression",
    "SectoredCache",
    "SmallCacheLines",
    "CacheLinkCompression",
    "ALL_TECHNIQUE_TYPES",
]


class AssumptionLevel(enum.Enum):
    """The three assumption tiers of Table 2 / the candle bars of Fig 15."""

    PESSIMISTIC = "pessimistic"
    REALISTIC = "realistic"
    OPTIMISTIC = "optimistic"


class Category(enum.Enum):
    """The paper's taxonomy of bandwidth-conservation techniques."""

    INDIRECT = "indirect"
    DIRECT = "direct"
    DUAL = "dual"


@dataclass(frozen=True)
class TechniqueEffect:
    """How a technique (or stack of techniques) alters the traffic model.

    Attributes
    ----------
    capacity_factor:
        ``F`` of Equation 8 — multiplies the effective capacity of the
        whole on-chip cache pool (compression ratios, de-duplication of
        unused words, ...).
    traffic_factor:
        Multiplies the *traffic budget*: a value of 2 means only half the
        raw bytes cross the chip boundary (link compression), which is
        equivalent to doubling the bandwidth envelope ``B``.
    on_die_density:
        Density of the cache on the processor die relative to SRAM
        (``D`` of the DRAM-cache technique).
    stacked_layers:
        Number of extra cache-only des stacked on top of the processor
        die (the paper analyses 0 or 1).
    stacked_density:
        Density of the stacked cache-only die relative to SRAM.  When the
        design also adopts DRAM caches, the stacked die is built from the
        densest available cell (see :meth:`resolved_stacked_density`).
    core_area_fraction:
        ``f_sm`` of Equation 10 — area of one core relative to a full CEA.
    """

    capacity_factor: float = 1.0
    traffic_factor: float = 1.0
    on_die_density: float = 1.0
    stacked_layers: int = 0
    stacked_density: float = 1.0
    core_area_fraction: float = 1.0

    def __post_init__(self) -> None:
        for name in ("capacity_factor", "traffic_factor", "on_die_density",
                     "stacked_density"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be positive and finite, got {value}")
        if self.stacked_layers < 0:
            raise ValueError(
                f"stacked_layers must be non-negative, got {self.stacked_layers}"
            )
        if not 0 < self.core_area_fraction <= 1:
            raise ValueError(
                f"core_area_fraction must be in (0, 1], got {self.core_area_fraction}"
            )

    @property
    def resolved_stacked_density(self) -> float:
        """Density actually used for the stacked die.

        A cache-only die is manufactured with the densest cell technology
        the design has adopted: combining DRAM caches with 3D stacking
        makes the stacked layer DRAM as well.  This rule is what
        reproduces the paper's 183-core all-techniques result.
        """
        return max(self.stacked_density, self.on_die_density)

    def effective_cache_ceas(self, total_ceas: float, core_ceas: float) -> float:
        """Effective cache pool, in SRAM-equivalent CEAs, for a die split.

        ``on_die_density * (N - f_sm * P)`` on the processor die, plus
        ``stacked_layers * resolved_density * N`` of stacked cache, all
        inflated by ``capacity_factor``.
        """
        die_cache = total_ceas - self.core_area_fraction * core_ceas
        if die_cache < 0:
            raise ValueError(
                f"{core_ceas} cores of size {self.core_area_fraction} CEA do "
                f"not fit on a {total_ceas}-CEA die"
            )
        raw = self.on_die_density * die_cache
        raw += self.stacked_layers * self.resolved_stacked_density * total_ceas
        return self.capacity_factor * raw

    def combine(self, other: "TechniqueEffect") -> "TechniqueEffect":
        """Compose two effects (Section 6.4's technique combinations).

        Multiplicative factors multiply; structural modifiers must not
        conflict (two different core sizes, or two different on-die cell
        technologies, have no defined composition and raise).
        """
        if (
            self.on_die_density != 1.0
            and other.on_die_density != 1.0
            and self.on_die_density != other.on_die_density
        ):
            raise ValueError(
                "conflicting on-die cache densities: "
                f"{self.on_die_density} vs {other.on_die_density}"
            )
        if (
            self.core_area_fraction != 1.0
            and other.core_area_fraction != 1.0
            and self.core_area_fraction != other.core_area_fraction
        ):
            raise ValueError(
                "conflicting core sizes: "
                f"{self.core_area_fraction} vs {other.core_area_fraction}"
            )
        return TechniqueEffect(
            capacity_factor=self.capacity_factor * other.capacity_factor,
            traffic_factor=self.traffic_factor * other.traffic_factor,
            on_die_density=max(self.on_die_density, other.on_die_density),
            stacked_layers=max(self.stacked_layers, other.stacked_layers),
            stacked_density=max(self.stacked_density, other.stacked_density),
            core_area_fraction=min(
                self.core_area_fraction, other.core_area_fraction
            ),
        )


#: The identity effect: a plain CMP with no conservation technique.
NEUTRAL_EFFECT = TechniqueEffect()


@dataclass(frozen=True)
class Technique:
    """Base class for the paper's bandwidth-conservation techniques.

    Subclasses carry their own parameters and implement :meth:`effect`.
    Each also provides Table 2's three preset levels via
    :meth:`at_level` / :meth:`pessimistic` / :meth:`realistic` /
    :meth:`optimistic`.  ``name``, ``label`` (the Figure 15 x-axis label)
    and ``category`` are plain class attributes, not dataclass fields.
    """

    name = "technique"
    label = "?"
    category = Category.INDIRECT

    def effect(self) -> TechniqueEffect:
        raise NotImplementedError

    @classmethod
    def at_level(cls, level: AssumptionLevel) -> "Technique":
        """Instantiate this technique with a Table 2 assumption preset."""
        presets = cls._table2_presets()
        if level not in presets:
            raise ValueError(f"{cls.__name__} has no {level.value} preset")
        return cls(**presets[level])

    @classmethod
    def pessimistic(cls) -> "Technique":
        return cls.at_level(AssumptionLevel.PESSIMISTIC)

    @classmethod
    def realistic(cls) -> "Technique":
        return cls.at_level(AssumptionLevel.REALISTIC)

    @classmethod
    def optimistic(cls) -> "Technique":
        return cls.at_level(AssumptionLevel.OPTIMISTIC)

    @classmethod
    def _table2_presets(cls) -> dict:
        raise NotImplementedError


def _check_ratio(ratio: float) -> None:
    if not math.isfinite(ratio) or ratio < 1.0:
        raise ValueError(f"compression ratio must be >= 1, got {ratio}")


def _check_unused_fraction(fraction: float) -> None:
    if not 0 <= fraction < 1:
        raise ValueError(f"unused fraction must be in [0, 1), got {fraction}")


@dataclass(frozen=True)
class CacheCompression(Technique):
    """Store cache lines compressed on chip (Section 6.1).

    An *indirect* technique: a compression ratio of ``r`` makes the cache
    behave as if it were ``r`` times larger (``F = r`` in Equation 8).
    """

    ratio: float = 2.0

    name = "cache-compression"
    label = "CC"
    category = Category.INDIRECT

    def __post_init__(self) -> None:
        _check_ratio(self.ratio)

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(capacity_factor=self.ratio)

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"ratio": 1.25},
            AssumptionLevel.REALISTIC: {"ratio": 2.0},
            AssumptionLevel.OPTIMISTIC: {"ratio": 3.5},
        }


@dataclass(frozen=True)
class DRAMCache(Technique):
    """Implement the on-chip L2 in dense DRAM instead of SRAM (Section 6.1).

    A density of ``D`` makes each cache CEA hold ``D`` SRAM-CEAs' worth of
    data.  Estimates in the literature range from 8x to 16x.
    """

    density: float = 8.0

    name = "dram-cache"
    label = "DRAM"
    category = Category.INDIRECT

    def __post_init__(self) -> None:
        if not math.isfinite(self.density) or self.density < 1.0:
            raise ValueError(f"density must be >= 1, got {self.density}")

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(on_die_density=self.density)

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"density": 4.0},
            AssumptionLevel.REALISTIC: {"density": 8.0},
            AssumptionLevel.OPTIMISTIC: {"density": 16.0},
        }


@dataclass(frozen=True)
class ThreeDStackedCache(Technique):
    """Stack an extra cache-only die on the processor die (Section 6.1).

    The stacked die adds ``N`` CEAs of cache area.  Its cells are SRAM by
    default (``layer_density = 1``); pass a higher density for the
    paper's "3D DRAM (8x/16x)" variants.  When combined with
    :class:`DRAMCache`, the stacked die inherits the DRAM density
    automatically (see :meth:`TechniqueEffect.resolved_stacked_density`).
    """

    layer_density: float = 1.0

    name = "3d-stacked-cache"
    label = "3D"
    category = Category.INDIRECT

    def __post_init__(self) -> None:
        if not math.isfinite(self.layer_density) or self.layer_density < 1.0:
            raise ValueError(f"layer_density must be >= 1, got {self.layer_density}")

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(stacked_layers=1, stacked_density=self.layer_density)

    @classmethod
    def _table2_presets(cls) -> dict:
        # Table 2 lists a single assumption (an SRAM layer) for 3D.
        sram_layer = {"layer_density": 1.0}
        return {
            AssumptionLevel.PESSIMISTIC: sram_layer,
            AssumptionLevel.REALISTIC: sram_layer,
            AssumptionLevel.OPTIMISTIC: sram_layer,
        }


@dataclass(frozen=True)
class UnusedDataFiltering(Technique):
    """Evict never-referenced words, keeping only useful ones (Section 6.1).

    If a fraction ``f`` of cached data is never referenced, filtering it
    out grows the effective capacity by ``1 / (1 - f)``.  Fetches still
    bring full lines on chip, so there is no direct traffic effect —
    contrast with :class:`SectoredCache` and :class:`SmallCacheLines`.
    """

    unused_fraction: float = 0.4

    name = "unused-data-filtering"
    label = "Fltr"
    category = Category.INDIRECT

    def __post_init__(self) -> None:
        _check_unused_fraction(self.unused_fraction)

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(capacity_factor=1.0 / (1.0 - self.unused_fraction))

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"unused_fraction": 0.1},
            AssumptionLevel.REALISTIC: {"unused_fraction": 0.4},
            AssumptionLevel.OPTIMISTIC: {"unused_fraction": 0.8},
        }


@dataclass(frozen=True)
class SmallerCores(Technique):
    """Use simpler cores occupying a fraction of a CEA (Section 6.1).

    Frees die area for cache (Equations 10-11).  The paper assumes the
    smaller core generates the *same traffic per unit of work*; the only
    modelled benefit is the reallocated area, which is why this technique
    scores "Low" effectiveness in Table 2.
    """

    area_fraction: float = 1.0 / 40.0

    name = "smaller-cores"
    label = "SmCo"
    category = Category.INDIRECT

    def __post_init__(self) -> None:
        if not 0 < self.area_fraction <= 1:
            raise ValueError(
                f"area_fraction must be in (0, 1], got {self.area_fraction}"
            )

    @property
    def area_reduction(self) -> float:
        """How many times smaller than a base core (Figure 8's x-axis)."""
        return 1.0 / self.area_fraction

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(core_area_fraction=self.area_fraction)

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"area_fraction": 1.0 / 9.0},
            AssumptionLevel.REALISTIC: {"area_fraction": 1.0 / 40.0},
            AssumptionLevel.OPTIMISTIC: {"area_fraction": 1.0 / 80.0},
        }


@dataclass(frozen=True)
class LinkCompression(Technique):
    """Compress data crossing the off-chip link (Section 6.2).

    A *direct* technique: a ratio of ``r`` moves ``1/r`` of the raw bytes,
    equivalent to growing the bandwidth envelope ``B`` by ``r``.
    """

    ratio: float = 2.0

    name = "link-compression"
    label = "LC"
    category = Category.DIRECT

    def __post_init__(self) -> None:
        _check_ratio(self.ratio)

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(traffic_factor=self.ratio)

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"ratio": 1.25},
            AssumptionLevel.REALISTIC: {"ratio": 2.0},
            AssumptionLevel.OPTIMISTIC: {"ratio": 3.5},
        }


@dataclass(frozen=True)
class SectoredCache(Technique):
    """Fetch only the predicted-useful sectors of a line (Section 6.2).

    Unfetched sectors still occupy cache space, so the cache capacity is
    unchanged; only the off-chip traffic shrinks, by ``1 / (1 - f)`` for
    an unused fraction ``f``.
    """

    unused_fraction: float = 0.4

    name = "sectored-cache"
    label = "Sect"
    category = Category.DIRECT

    def __post_init__(self) -> None:
        _check_unused_fraction(self.unused_fraction)

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(traffic_factor=1.0 / (1.0 - self.unused_fraction))

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"unused_fraction": 0.1},
            AssumptionLevel.REALISTIC: {"unused_fraction": 0.4},
            AssumptionLevel.OPTIMISTIC: {"unused_fraction": 0.8},
        }


@dataclass(frozen=True)
class SmallCacheLines(Technique):
    """Word-sized cache lines: never move or store unused words (Section 6.3).

    A *dual* technique (Equation 12): for unused fraction ``f``, the
    cache behaves ``1 / (1 - f)`` larger *and* the traffic shrinks by
    ``1 / (1 - f)``.
    """

    unused_fraction: float = 0.4

    name = "small-cache-lines"
    label = "SmCl"
    category = Category.DUAL

    def __post_init__(self) -> None:
        _check_unused_fraction(self.unused_fraction)

    def effect(self) -> TechniqueEffect:
        factor = 1.0 / (1.0 - self.unused_fraction)
        return TechniqueEffect(capacity_factor=factor, traffic_factor=factor)

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"unused_fraction": 0.1},
            AssumptionLevel.REALISTIC: {"unused_fraction": 0.4},
            AssumptionLevel.OPTIMISTIC: {"unused_fraction": 0.8},
        }


@dataclass(frozen=True)
class CacheLinkCompression(Technique):
    """Keep link-compressed data compressed in the cache too (Section 6.3).

    A *dual* technique: one compression ratio ``r`` both inflates the
    effective cache capacity and deflates the off-chip traffic.
    """

    ratio: float = 2.0

    name = "cache-link-compression"
    label = "CC/LC"
    category = Category.DUAL

    def __post_init__(self) -> None:
        _check_ratio(self.ratio)

    def effect(self) -> TechniqueEffect:
        return TechniqueEffect(capacity_factor=self.ratio, traffic_factor=self.ratio)

    @classmethod
    def _table2_presets(cls) -> dict:
        return {
            AssumptionLevel.PESSIMISTIC: {"ratio": 1.25},
            AssumptionLevel.REALISTIC: {"ratio": 2.0},
            AssumptionLevel.OPTIMISTIC: {"ratio": 3.5},
        }


#: Every concrete technique type, in the paper's Figure 15 order.
ALL_TECHNIQUE_TYPES: Tuple[type, ...] = (
    CacheCompression,
    DRAMCache,
    ThreeDStackedCache,
    UnusedDataFiltering,
    SmallerCores,
    LinkCompression,
    SectoredCache,
    SmallCacheLines,
    CacheLinkCompression,
)

"""Die-area accounting in Core Equivalent Areas (CEAs).

The paper abstracts a CMP die as ``N`` Core Equivalent Areas, where one CEA
is the area occupied by one processor core together with its L1 caches
(Table 1 of the paper).  ``P`` CEAs hold cores, the remaining ``C = N - P``
hold on-chip (L2) cache, and ``S = C / P`` is the amount of cache per core.
On-chip components other than cores and caches are assumed to occupy a
constant fraction of the die in every generation and are therefore outside
the CEA budget.

:class:`ChipDesign` is the value type used throughout the model.  It is
immutable; derive modified designs with :meth:`ChipDesign.with_cores` and
friends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = [
    "ChipDesign",
    "CEA_BYTES_DEFAULT",
    "ceas_for_cache_bytes",
    "cache_bytes_for_ceas",
]

#: Default cache capacity of one CEA, in bytes.  The paper's baseline maps
#: 8 CEAs of L2 to "roughly 4MB", i.e. one CEA of SRAM holds ~512 KB.
CEA_BYTES_DEFAULT = 512 * 1024


def ceas_for_cache_bytes(num_bytes: float, cea_bytes: int = CEA_BYTES_DEFAULT) -> float:
    """Convert a cache capacity in bytes to CEAs.

    >>> ceas_for_cache_bytes(4 * 1024 * 1024)
    8.0
    """
    if num_bytes < 0:
        raise ValueError(f"cache capacity must be non-negative, got {num_bytes}")
    if cea_bytes <= 0:
        raise ValueError(f"cea_bytes must be positive, got {cea_bytes}")
    return num_bytes / cea_bytes


def cache_bytes_for_ceas(ceas: float, cea_bytes: int = CEA_BYTES_DEFAULT) -> float:
    """Convert a cache area in CEAs back to a capacity in bytes."""
    if ceas < 0:
        raise ValueError(f"cache CEAs must be non-negative, got {ceas}")
    if cea_bytes <= 0:
        raise ValueError(f"cea_bytes must be positive, got {cea_bytes}")
    return ceas * cea_bytes


@dataclass(frozen=True)
class ChipDesign:
    """A CMP die split between cores and cache, in CEAs.

    Parameters
    ----------
    total_ceas:
        ``N`` — total die area in CEAs.
    core_ceas:
        ``P`` — CEAs allocated to cores.  With full-size cores this is also
        the number of cores; see ``core_area_fraction`` for smaller cores.
    core_area_fraction:
        ``f_sm`` — the area of one core as a fraction of one CEA
        (Section 6.1, "Smaller Cores").  The default of 1.0 is the paper's
        base assumption that a core occupies exactly one CEA.  When
        ``core_area_fraction < 1``, ``core_ceas`` still counts *cores*, and
        the die area they occupy is ``core_area_fraction * core_ceas``.

    Examples
    --------
    The paper's Niagara2-like baseline (Section 5.1):

    >>> base = ChipDesign(total_ceas=16, core_ceas=8)
    >>> base.cache_ceas
    8.0
    >>> base.cache_per_core
    1.0
    """

    total_ceas: float
    core_ceas: float
    core_area_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.total_ceas) or self.total_ceas <= 0:
            raise ValueError(f"total_ceas must be positive, got {self.total_ceas}")
        if not math.isfinite(self.core_ceas) or self.core_ceas <= 0:
            raise ValueError(f"core_ceas must be positive, got {self.core_ceas}")
        if not 0 < self.core_area_fraction <= 1:
            raise ValueError(
                "core_area_fraction must be in (0, 1], got "
                f"{self.core_area_fraction}"
            )
        if self.occupied_core_area > self.total_ceas:
            raise ValueError(
                f"cores occupy {self.occupied_core_area} CEAs, exceeding the "
                f"die size of {self.total_ceas} CEAs"
            )

    @property
    def num_cores(self) -> float:
        """``P`` — the number of cores (continuous in the model)."""
        return self.core_ceas

    @property
    def occupied_core_area(self) -> float:
        """Die area actually occupied by cores, in CEAs."""
        return self.core_area_fraction * self.core_ceas

    @property
    def cache_ceas(self) -> float:
        """``C`` — CEAs left over for on-chip cache."""
        return self.total_ceas - self.occupied_core_area

    @property
    def cache_per_core(self) -> float:
        """``S = C / P`` — on-chip cache per core, in CEAs."""
        return self.cache_ceas / self.core_ceas

    @property
    def core_area_share(self) -> float:
        """Fraction of the die occupied by cores (Figure 3's right axis)."""
        return self.occupied_core_area / self.total_ceas

    @property
    def cache_area_share(self) -> float:
        """Fraction of the die occupied by cache."""
        return self.cache_ceas / self.total_ceas

    def cache_bytes(self, cea_bytes: int = CEA_BYTES_DEFAULT) -> float:
        """Total cache capacity in bytes, assuming SRAM density."""
        return cache_bytes_for_ceas(self.cache_ceas, cea_bytes)

    def with_cores(self, core_ceas: float) -> "ChipDesign":
        """Return a design on the same die with a different core count."""
        return replace(self, core_ceas=core_ceas)

    def with_total(self, total_ceas: float) -> "ChipDesign":
        """Return a design with a different die size, same core count."""
        return replace(self, total_ceas=total_ceas)

    def scaled(self, area_factor: float) -> "ChipDesign":
        """Return the die grown by ``area_factor`` with cores unchanged.

        This models moving to a denser process technology: the transistor
        budget (in CEAs) grows while the existing cores keep their size.
        """
        if area_factor <= 0:
            raise ValueError(f"area_factor must be positive, got {area_factor}")
        return replace(self, total_ceas=self.total_ceas * area_factor)

    def proportionally_scaled(self, area_factor: float) -> "ChipDesign":
        """Return the die and core count both grown by ``area_factor``.

        This is the paper's "ideal"/"proportional" scaling: the core count
        keeps pace with the transistor budget and the core:cache split is
        preserved.
        """
        if area_factor <= 0:
            raise ValueError(f"area_factor must be positive, got {area_factor}")
        return replace(
            self,
            total_ceas=self.total_ceas * area_factor,
            core_ceas=self.core_ceas * area_factor,
        )

"""Bandwidth-roadmap projections (extension of Sections 1 and 6.2).

The paper grounds its constant-traffic assumption in the ITRS roadmap:
pins grow ~10%/year while cores want to double every 18 months, and the
industry's actual levers are interface frequency and channel count
(Niagara1→2: 25→42 GB/s; POWER5→6: doubled controllers + 533→800 MHz
DDR2).  This module turns those levers into an explicit model of the
bandwidth envelope ``B`` per generation, so scaling studies can use a
*projected* budget rather than a hand-picked constant:

* :class:`BandwidthRoadmap` — compounding growth of pins, per-pin
  signalling rate, and channel count, with an optional one-shot link
  compression multiplier;
* :func:`wall_onset` — the first generation at which proportional
  scaling stops fitting the projected envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .scaling import BandwidthWallModel

__all__ = [
    "BandwidthRoadmap",
    "RoadmapPoint",
    "ITRS_ROADMAP",
    "OPTIMISTIC_ROADMAP",
    "FLAT_ROADMAP",
    "wall_onset",
]

#: Years per process-technology generation (cores double every 18
#: months in the paper's framing).
YEARS_PER_GENERATION = 1.5


@dataclass(frozen=True)
class BandwidthRoadmap:
    """Multiplicative bandwidth growth per technology generation.

    Parameters
    ----------
    pin_growth_per_year:
        ITRS projects ~1.10 (10%/year).
    frequency_growth_per_generation:
        Interface signalling improvement per generation (DDR steps).
    channel_growth_per_generation:
        Extra memory channels/controllers per generation (limited by
        pins and board cost; 1.0 = none).
    """

    name: str
    pin_growth_per_year: float = 1.10
    frequency_growth_per_generation: float = 1.0
    channel_growth_per_generation: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "pin_growth_per_year",
            "frequency_growth_per_generation",
            "channel_growth_per_generation",
        ):
            value = getattr(self, field_name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")

    @property
    def growth_per_generation(self) -> float:
        """Compound bandwidth multiplier per generation."""
        pins = self.pin_growth_per_year**YEARS_PER_GENERATION
        return (
            pins
            * self.frequency_growth_per_generation
            * self.channel_growth_per_generation
        )

    def budget_at(self, generation: int) -> float:
        """Traffic budget ``B`` relative to today, ``generation`` steps out."""
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        return self.growth_per_generation**generation


#: Pins only, per the ITRS projection the paper cites.
ITRS_ROADMAP = BandwidthRoadmap("ITRS pins only")

#: Pins plus the historical frequency/channel levers (Niagara/POWER6
#: style), roughly +50% per generation overall.
OPTIMISTIC_ROADMAP = BandwidthRoadmap(
    "pins + frequency + channels",
    frequency_growth_per_generation=1.15,
    channel_growth_per_generation=1.12,
)

#: The paper's default: bandwidth does not grow at all.
FLAT_ROADMAP = BandwidthRoadmap("flat", pin_growth_per_year=1.0)


@dataclass(frozen=True)
class RoadmapPoint:
    """One generation of a roadmap-driven scaling study."""

    generation: int
    area_factor: float
    budget: float
    supportable_cores: int
    proportional_cores: float

    @property
    def keeps_pace(self) -> bool:
        return self.supportable_cores >= self.proportional_cores


def wall_onset(
    model: BandwidthWallModel,
    roadmap: BandwidthRoadmap,
    *,
    max_generations: int = 8,
    link_compression_ratio: float = 1.0,
) -> Tuple[Optional[int], List[RoadmapPoint]]:
    """First generation where proportional scaling breaks the envelope.

    Returns ``(onset_generation, trajectory)``; ``onset_generation`` is
    ``None`` when proportional scaling fits for the whole horizon.  A
    one-shot ``link_compression_ratio`` multiplies every generation's
    budget (compression is applied once, not compounded — Section 6.2).
    """
    if max_generations < 1:
        raise ValueError(
            f"max_generations must be >= 1, got {max_generations}"
        )
    if link_compression_ratio < 1:
        raise ValueError(
            "link_compression_ratio must be >= 1, got "
            f"{link_compression_ratio}"
        )
    onset: Optional[int] = None
    trajectory: List[RoadmapPoint] = []
    base_ceas = model.baseline.total_ceas
    base_cores = model.baseline.num_cores
    for generation in range(1, max_generations + 1):
        area_factor = 2.0**generation
        budget = roadmap.budget_at(generation) * link_compression_ratio
        solution = model.supportable_cores(
            base_ceas * area_factor, traffic_budget=budget
        )
        point = RoadmapPoint(
            generation=generation,
            area_factor=area_factor,
            budget=budget,
            supportable_cores=solution.cores,
            proportional_cores=base_cores * area_factor,
        )
        trajectory.append(point)
        if onset is None and not point.keeps_pace:
            onset = generation
    return onset, trajectory

"""Vectorized batch solving of the bandwidth-wall equation.

The hot loop behind every sweep grid, experiment id and ``/v1/sweep``
request is :meth:`repro.core.scaling.BandwidthWallModel.supportable_cores`
— one guarded bisection per grid point.  This module solves whole grids
at once with numpy while keeping the results **byte-identical** to the
scalar path, which is what lets the golden harness, the jobs subsystem's
checkpoint identity guarantees and the response cache keep working
unchanged on top of it.

How the equation vectorizes
---------------------------
For a technique stack the effective cache pool is *affine* in the core
count: ``S_eff(P) = cf * (d*(N - f*P) + L*sd*N) = K - q*P`` with
``K = cf*N*(d + L*sd)`` and ``q = cf*d*f``.  The governing equation
(Equation 7 generalised to all techniques) is therefore

.. math::  (P/P_1) \\cdot \\big((K - qP)/(P S_1)\\big)^{-\\alpha} = B t

For the paper's default :math:`\\alpha = 1/2` (and any other
small-denominator rational alpha) raising both sides to the denominator
turns this into a **low-degree polynomial** — a depressed cubic for
:math:`\\alpha = 1/2` — with exactly one root in the feasible interval,
solvable in closed form for the whole grid at once.  Non-polynomial
alphas fall back to a vectorized safeguarded Newton iteration on the
log form.  Both are selected automatically per batch.

Why a "replay" pass instead of returning the analytic root
----------------------------------------------------------
Two floating-point facts force the final answer to come from replaying
the scalar bisection rather than from the polynomial root directly:

1. the scalar solver returns the midpoint of a ``tol``-wide bisection
   bracket, not the correctly-rounded root, so an analytically better
   answer would *differ* from the goldens by ~1e-13; and
2. numpy's SIMD ``**`` for float64 deviates from CPython's libm ``pow``
   by 1 ulp on a few percent of inputs, so even a numpy re-run of the
   exact bisection arithmetic is not bit-reproducible.

The batch kernel therefore uses the analytic root only as an
*estimate*: the bisection trajectory of the scalar solver is a fixed
dyadic subdivision of ``[lo, hi]`` whose branch decisions compare
``traffic(mid)`` against the budget, and every decision whose midpoint
lies further than a safety margin from the estimated root is decided
positionally with no function evaluation at all.  Only the handful of
midpoints inside the margin (the margin is orders of magnitude wider
than the estimate's error) are evaluated with *scalar* CPython
arithmetic — the identical sequence of float operations the scalar
solver performs — so every branch decision, and hence the returned
bit pattern, matches the scalar path exactly.  Grid points whose
bracket guards fail (area-limited designs, unsolvably tiny budgets)
are delegated to the scalar solve so ``BracketError`` semantics and
messages stay identical too.

numpy is optional: without it (or with ``REPRO_VECTORIZED=off``) every
entry point degrades to the scalar loop, keeping the stdlib-only
service deployable.  ``REPRO_VECTORIZED=force`` routes even single
solves through the batch kernel, which is how the differential suite
proves equivalence across all 28 golden experiment ids.
"""

from __future__ import annotations

import math
import os
from fractions import Fraction
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the numpy-absent tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # import cycle guard (typing only)
    from .scaling import BandwidthWallModel, ScalingSolution
    from .techniques import TechniqueEffect

__all__ = [
    "has_numpy",
    "configure",
    "mode",
    "use_batch",
    "solve_batch",
    "MIN_BATCH_SIZE",
    "MODE_ENV_VAR",
]

#: Environment variable selecting the dispatch mode at process start:
#: ``auto`` (default), ``force`` (route every solve through the batch
#: kernel — used by the differential test suite) or ``off``.
MODE_ENV_VAR = "REPRO_VECTORIZED"

#: Below this batch size the numpy fixed costs outweigh the win, so
#: ``auto`` mode keeps small grids on the scalar loop.
MIN_BATCH_SIZE = 16

#: Mirrors the defaults of :func:`repro.core.solver.solve_increasing`,
#: which :meth:`BandwidthWallModel.supportable_cores` relies on.
_TOL = 1e-12
_MAX_ITER = 200

#: Half-width of the band around the estimated root inside which replay
#: decisions are made by exact scalar evaluation instead of by position.
#: The polished estimate is accurate to a few ulps (~1e-15 relative);
#: 1e-12 relative leaves three orders of magnitude of safety while
#: keeping the exact evaluations to ~5 of the ~48 bisection steps.
_MARGIN_REL = 1e-12

#: Relative half-width of the band around the budget inside which the
#: bracket-guard comparisons are re-evaluated with scalar arithmetic
#: (outside it the numpy estimate decides safely).
_GUARD_BAND_REL = 1e-9

_VALID_MODES = ("auto", "force", "off")


def _initial_mode() -> str:
    raw = os.environ.get(MODE_ENV_VAR, "auto").strip().lower()
    return raw if raw in _VALID_MODES else "auto"


_MODE = _initial_mode()


def has_numpy() -> bool:
    """Whether the batch kernel's backend is importable."""
    return _np is not None


def configure(mode_name: str) -> None:
    """Select the dispatch mode: ``auto``, ``force`` or ``off``."""
    global _MODE
    if mode_name not in _VALID_MODES:
        raise ValueError(
            f"mode must be one of {_VALID_MODES}, got {mode_name!r}"
        )
    _MODE = mode_name


def mode() -> str:
    """The current dispatch mode."""
    return _MODE


def use_batch(batch_size: int) -> bool:
    """Should a batch of this size go through the vectorized kernel?"""
    if _np is None or _MODE == "off":
        return False
    return _MODE == "force" or batch_size >= MIN_BATCH_SIZE


# ----------------------------------------------------------------------
# Exact scalar arithmetic (must mirror BandwidthWallModel bit-for-bit)
# ----------------------------------------------------------------------


def _effect_coeffs(effect: "TechniqueEffect") -> Tuple[float, float, float,
                                                       float, float]:
    """``(f, d, ls, cf, tf)`` — the floats the traffic formula consumes.

    ``ls`` pre-multiplies ``stacked_layers * resolved_stacked_density``
    exactly as :meth:`TechniqueEffect.effective_cache_ceas` evaluates
    that (left-associative) product, so using it keeps the arithmetic
    identical.
    """
    return (
        effect.core_area_fraction,
        effect.on_die_density,
        effect.stacked_layers * effect.resolved_stacked_density,
        effect.capacity_factor,
        effect.traffic_factor,
    )


def _traffic_exact(
    p: float,
    total: float,
    f: float,
    d: float,
    ls: float,
    cf: float,
    tf: float,
    p1: float,
    s1: float,
    neg_alpha: float,
) -> float:
    """``BandwidthWallModel.relative_traffic`` as straight-line scalar code.

    Operation-for-operation identical to the method (including the
    intermediate rounding of every step), minus the attribute lookups.
    Used for the few replay decisions that positional reasoning cannot
    settle — those must round exactly as the scalar solver's own
    evaluations do.
    """
    die = total - f * p
    if die < 0:
        raise ValueError(
            f"{p} cores of size {f} CEA do not fit on a {total}-CEA die"
        )
    raw = d * die
    raw = raw + ls * total
    s2 = (cf * raw) / p
    if s2 <= 0:
        return math.inf
    return (p / p1) * (s2 / s1) ** neg_alpha / tf


# ----------------------------------------------------------------------
# Estimate-side numpy arithmetic (fast, 1-ulp accuracy is fine)
# ----------------------------------------------------------------------


def _traffic_estimate(p, total, f, d, ls, cf, tf, p1, s1, neg_alpha):
    """Vectorized traffic; may differ from the scalar path by ~1 ulp."""
    die = total - f * p
    raw = d * die + ls * total
    with _np.errstate(all="ignore"):
        s2 = (cf * raw) / p
        traffic = (p / p1) * (s2 / s1) ** neg_alpha / tf
        return _np.where(s2 <= 0, _np.inf, traffic)


def _rational_alpha(alpha: float, max_denominator: int = 8
                    ) -> Optional[Tuple[int, int]]:
    """``(u, v)`` with ``alpha == u/v`` exactly, if such small ints exist."""
    fraction = Fraction(alpha).limit_denominator(max_denominator)
    if float(fraction) == alpha and fraction.numerator >= 1:
        return fraction.numerator, fraction.denominator
    return None


def _cubic_roots(K, q, A, s1):
    """The single real root of ``s1*p^3 + A*q*p - A*K = 0`` (alpha = 1/2).

    ``A = (budget * tf * p1)^2``.  With ``q >= 0`` the cubic is strictly
    increasing, so the hyperbolic (single-real-root) branch of Cardano's
    method applies everywhere; degenerate coefficients produce
    non-finite values the caller's Newton polish repairs.
    """
    with _np.errstate(all="ignore"):
        c1 = A * q / s1
        c0 = -(A * K) / s1
        scale = _np.sqrt(c1 / 3.0)
        arg = (3.0 * c0) / (2.0 * c1) * _np.sqrt(3.0 / c1)
        root = -2.0 * scale * _np.sinh(_np.arcsinh(arg) / 3.0)
        # c1 == 0 (no cache shrink term) degenerates to a pure cube.
        cube = _np.cbrt(-c0)
        return _np.where(c1 > 0, root, cube)


def _polynomial_roots(u, v, K, q, hi, target_eff, p1, s1):
    """Batched ``np.roots`` for alpha = u/v: companion-matrix eigenvalues.

    Raising the governing equation to the ``v``-th power yields
    ``s1^u * p^(u+v) = (B*tf*p1)^v * (K - q*p)^u`` — a degree ``u+v``
    polynomial per grid point.  All companion matrices are stacked and
    solved with one ``eigvals`` call; the real eigenvalue inside
    ``(0, hi)`` is the root (the power-raising can add spurious roots
    only outside the feasible interval, where ``K - q*p <= 0``).
    """
    n = K.shape[0]
    degree = u + v
    lead = float(s1) ** u
    rhs = target_eff ** v * float(p1) ** v
    # coeffs[:, j] multiplies p^j; monic after dividing by s1^u.
    coeffs = _np.zeros((n, degree))
    for j in range(u + 1):
        binom = math.comb(u, j)
        coeffs[:, j] = -rhs * binom * K ** (u - j) * (-q) ** j / lead
    companion = _np.zeros((n, degree, degree))
    companion[:, 1:, :-1] = _np.eye(degree - 1)
    companion[:, :, -1] = -coeffs
    with _np.errstate(all="ignore"):
        eigen = _np.linalg.eigvals(companion)
    real = _np.where(
        (_np.abs(eigen.imag) <= 1e-9 * (_np.abs(eigen.real) + 1.0))
        & (eigen.real > 0)
        & (eigen.real < hi[:, None]),
        eigen.real,
        _np.nan,
    )
    # At most one candidate survives; nanmax collapses the axis.
    with _np.errstate(all="ignore"):
        return _np.nanmax(real, axis=1)


def _estimate_roots(total, target, hi, a, b, f, d, ls, cf, tf,
                    alpha, p1, s1):
    """Per-point root estimates, polished to float saturation.

    Dispatch: analytic cubic for alpha = 1/2, batched companion-matrix
    eigenvalues (``np.roots`` semantics) for other small-denominator
    rational alphas, and the safeguarded Newton fallback — which also
    polishes the polynomial starts — for everything else.

    Returns ``(estimate, converged)``; non-converged points keep a
    usable bracket midpoint but must be replayed with exact evaluation
    at every step (the caller widens their margin to infinity).
    """
    K = cf * (d * total + ls * total)
    q = cf * d * f
    target_eff = target * tf

    rational = _rational_alpha(alpha)
    if alpha == 0.5:
        start = _cubic_roots(K, q, (target_eff * p1) ** 2, s1)
    elif rational is not None and sum(rational) <= 6:
        start = _polynomial_roots(rational[0], rational[1], K, q, hi,
                                  target_eff, p1, s1)
    else:
        start = _np.full_like(total, _np.nan)

    lo_br = a.copy()
    hi_br = b.copy()
    x = _np.where(_np.isfinite(start) & (start > a) & (start < b),
                  start, 0.5 * (a + b))
    # log-space constant of the monotone form h(p) = (1+alpha)*ln p
    # - alpha*ln(K - q p) - C; Newton on h never needs a pow.
    with _np.errstate(all="ignore"):
        c_log = (_np.log(target_eff) + math.log(p1)
                 - alpha * math.log(s1))
    converged = _np.zeros(total.shape, dtype=bool)
    for _ in range(80):
        with _np.errstate(all="ignore"):
            slack = K - q * x
            h = ((1.0 + alpha) * _np.log(x) - alpha * _np.log(slack)
                 - c_log)
            lo_br = _np.where(h < 0, x, lo_br)
            hi_br = _np.where(h > 0, x, hi_br)
            hp = (1.0 + alpha) / x + alpha * q / slack
            step = h / hp
            nxt = x - step
            outside = ~((nxt > lo_br) & (nxt < hi_br))
            nxt = _np.where(outside, 0.5 * (lo_br + hi_br), nxt)
            done = _np.abs(nxt - x) <= 4e-16 * _np.abs(nxt)
        # Freeze elements that have already converged: while the loop
        # keeps running for their batch-mates, an underflowed Newton
        # step (nxt == x == lo_br) would otherwise trip the `outside`
        # safeguard and teleport a finished iterate to the bracket
        # midpoint.
        frozen = converged.copy()
        converged |= done & _np.isfinite(nxt)
        x = _np.where(~frozen & _np.isfinite(nxt), nxt, x)
        if bool(converged.all()):
            break
    return x, converged


# ----------------------------------------------------------------------
# The byte-exact replay
# ----------------------------------------------------------------------


def _replay_bisection(total, target, a, b, xhat, margin, scalars):
    """Reproduce the scalar bisection bit-for-bit across the batch.

    ``a``/``b`` are the already-guarded inner bracket endpoints.  Each
    of the <= 200 rounds mirrors one iteration of
    :func:`repro.core.solver.solve_increasing`: midpoints further than
    ``margin`` from the estimated root take the branch their position
    dictates; the rest evaluate ``traffic(mid)`` with exact scalar
    arithmetic.  Elements freeze as soon as their bracket reaches the
    scalar solver's tolerance, exactly like the scalar early-exit.
    """
    total_l = total.tolist()
    target_l = target.tolist()
    (f_l, d_l, ls_l, cf_l, tf_l), (p1, s1, neg_alpha) = scalars
    active = _np.ones(total.shape, dtype=bool)
    for _ in range(_MAX_ITER):
        mid = 0.5 * (a + b)
        below = mid < xhat
        near = active & (_np.abs(mid - xhat) <= margin)
        if bool(near.any()):
            indices = _np.nonzero(near)[0].tolist()
            mids = mid[indices].tolist()
            for i, m in zip(indices, mids):
                below[i] = _traffic_exact(
                    m, total_l[i], f_l[i], d_l[i], ls_l[i], cf_l[i],
                    tf_l[i], p1, s1, neg_alpha,
                ) < target_l[i]
        a = _np.where(active & below, mid, a)
        b = _np.where(active & ~below, mid, b)
        active &= (b - a) > _TOL
        if not bool(active.any()):
            break
    return 0.5 * (a + b)


# ----------------------------------------------------------------------
# Public batch entry point
# ----------------------------------------------------------------------


def solve_batch(
    model: "BandwidthWallModel",
    queries: Sequence[Tuple[float, float, Any]],
) -> List["ScalingSolution"]:
    """Solve ``(total_ceas, traffic_budget, effect)`` queries as a batch.

    The counterpart of calling
    :meth:`BandwidthWallModel.supportable_cores` once per query, with
    bit-identical results and exceptions: invalid queries raise the same
    ``ValueError``; unsolvable ones the same :class:`BracketError`
    (always for the earliest offending query index).  Does **not**
    consult the solve memo — callers that want memoization go through
    :meth:`BandwidthWallModel.supportable_cores_batch`.

    Without numpy every query runs through the scalar path unchanged.
    """
    queries = list(queries)
    if _np is None or _MODE == "off":
        return [model.solve_point(t, budget, effect)
                for t, budget, effect in queries]
    n = len(queries)
    for total_ceas, traffic_budget, _ in queries:
        model.validate_query(total_ceas, traffic_budget)

    total = _np.array([q[0] for q in queries], dtype=float)
    target = _np.array([q[1] for q in queries], dtype=float)
    f = _np.empty(n)
    d = _np.empty(n)
    ls = _np.empty(n)
    cf = _np.empty(n)
    tf = _np.empty(n)
    coeff_cache: dict = {}
    for i, (_, _, effect) in enumerate(queries):
        coeffs = coeff_cache.get(id(effect))
        if coeffs is None:
            coeffs = _effect_coeffs(effect)
            coeff_cache[id(effect)] = coeffs
        f[i], d[i], ls[i], cf[i], tf[i] = coeffs

    p1 = float(model.baseline.num_cores)
    s1 = float(model.baseline.cache_per_core)
    alpha = model.alpha
    neg_alpha = -alpha

    # Bracket setup, op-for-op as supportable_cores + solve_increasing.
    lo = _np.zeros(n)
    hi = total / f
    span = hi - lo
    a = lo + span * 1e-12
    b = hi - span * 1e-12

    est_args = (total, f, d, ls, cf, tf, p1, s1, neg_alpha)
    fa = _traffic_estimate(a, *est_args)
    fb = _traffic_estimate(b, *est_args)

    # Guard decisions: clearly-bracketed points solve in the batch;
    # points near either guard threshold re-check with exact scalar
    # arithmetic; failures (and non-finite budgets, which the scalar
    # path rejects inside solve_increasing) delegate wholesale so
    # BracketError handling and the area-limited fallback stay on the
    # scalar code path.
    with _np.errstate(all="ignore"):
        band_a = _GUARD_BAND_REL * (_np.abs(fa) + _np.abs(target))
        band_b = _GUARD_BAND_REL * (_np.abs(fb) + _np.abs(target))
        ok = (fa < target - band_a) & (fb > target + band_b)
        unsure = (~ok) & (_np.abs(fa - target) <= band_a)
        unsure |= (~ok) & (_np.abs(fb - target) <= band_b)
        ok &= _np.isfinite(target)
        unsure &= _np.isfinite(target)
    if bool(unsure.any()):
        f_l, d_l, ls_l, cf_l, tf_l = (f.tolist(), d.tolist(), ls.tolist(),
                                      cf.tolist(), tf.tolist())
        for i in _np.nonzero(unsure)[0].tolist():
            fa_i = _traffic_exact(float(a[i]), float(total[i]), f_l[i],
                                  d_l[i], ls_l[i], cf_l[i], tf_l[i],
                                  p1, s1, neg_alpha)
            fb_i = _traffic_exact(float(b[i]), float(total[i]), f_l[i],
                                  d_l[i], ls_l[i], cf_l[i], tf_l[i],
                                  p1, s1, neg_alpha)
            ok[i] = fa_i <= target[i] and fb_i >= target[i]

    keep = _np.nonzero(ok)[0]
    solutions: List[Optional["ScalingSolution"]] = [None] * n
    if keep.size:
        kt, ktarget = total[keep], target[keep]
        ka, kb, khi = a[keep], b[keep], hi[keep]
        kf, kd, kls, kcf, ktf = f[keep], d[keep], ls[keep], cf[keep], \
            tf[keep]
        xhat, converged = _estimate_roots(
            kt, ktarget, khi, ka, kb, kf, kd, kls, kcf, ktf,
            alpha, p1, s1,
        )
        margin = _np.maximum(_MARGIN_REL * _np.abs(xhat), 2.0 * _TOL)
        margin = _np.where(converged, margin, _np.inf)
        scalars = ((kf.tolist(), kd.tolist(), kls.tolist(),
                    kcf.tolist(), ktf.tolist()), (p1, s1, neg_alpha))
        roots = _replay_bisection(kt, ktarget, ka, kb, xhat, margin,
                                  scalars)
        roots_l = roots.tolist()
        for j, i in enumerate(keep.tolist()):
            total_ceas, traffic_budget, effect = queries[i]
            solutions[i] = model.finish_solution(
                total_ceas, traffic_budget, effect, roots_l[j],
                area_limited=False,
            )
    failed = [i for i in range(n) if solutions[i] is None]
    if failed:
        # Batched guard-failure path.  Each failed point is classified
        # with two exact endpoint evaluations (vs ~48 for a delegated
        # bisection): exactly-bracketed stragglers (estimate/exact
        # disagreement near a guard band) re-solve as a second batch;
        # unbracketed points resolve area-limited through the same
        # finish_solution call the scalar fallback makes, or delegate
        # to solve_point so the canonical BracketError/ValueError —
        # for the earliest offending index — stays byte-identical.
        stragglers: List[int] = []
        errors: List[int] = []
        t_l, tgt_l = total.tolist(), target.tolist()
        a_l, b_l = a.tolist(), b.tolist()
        f_l, d_l, ls_l, cf_l, tf_l = (f.tolist(), d.tolist(),
                                      ls.tolist(), cf.tolist(),
                                      tf.tolist())
        for i in failed:
            if not math.isfinite(tgt_l[i]):
                errors.append(i)
                continue
            args_i = (t_l[i], f_l[i], d_l[i], ls_l[i], cf_l[i],
                      tf_l[i], p1, s1, neg_alpha)
            fa_i = _traffic_exact(a_l[i], *args_i)
            fb_i = _traffic_exact(b_l[i], *args_i)
            if fa_i <= tgt_l[i] <= fb_i:
                stragglers.append(i)
                continue
            # Mirror solve_point's BracketError handler op-for-op:
            # budget admits a full-die core allocation -> area-limited.
            total_ceas, traffic_budget, effect = queries[i]
            max_cores = total_ceas / effect.core_area_fraction
            if model.relative_traffic(
                total_ceas, max_cores * (1 - 1e-12), effect
            ) < traffic_budget:
                solutions[i] = model.finish_solution(
                    total_ceas, traffic_budget, effect, max_cores,
                    area_limited=True,
                )
            else:
                errors.append(i)
        for i in errors:
            # The first call raises the canonical scalar exception; the
            # loop shape is defensive against a classification miss.
            total_ceas, traffic_budget, effect = queries[i]
            solutions[i] = model.solve_point(total_ceas, traffic_budget,
                                             effect)
        if stragglers:
            sidx = _np.array(stragglers, dtype=int)
            st, starget = total[sidx], target[sidx]
            sa, sb, shi = a[sidx], b[sidx], hi[sidx]
            sf, sd, sls, scf, stf = (f[sidx], d[sidx], ls[sidx],
                                     cf[sidx], tf[sidx])
            xhat, converged = _estimate_roots(
                st, starget, shi, sa, sb, sf, sd, sls, scf, stf,
                alpha, p1, s1,
            )
            margin = _np.maximum(_MARGIN_REL * _np.abs(xhat),
                                 2.0 * _TOL)
            margin = _np.where(converged, margin, _np.inf)
            scalars = ((sf.tolist(), sd.tolist(), sls.tolist(),
                        scf.tolist(), stf.tolist()),
                       (p1, s1, neg_alpha))
            roots = _replay_bisection(st, starget, sa, sb, xhat,
                                      margin, scalars)
            roots_l = roots.tolist()
            for j, i in enumerate(stragglers):
                total_ceas, traffic_budget, effect = queries[i]
                solutions[i] = model.finish_solution(
                    total_ceas, traffic_budget, effect, roots_l[j],
                    area_limited=False,
                )
    return solutions

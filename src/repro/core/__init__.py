"""The paper's analytical model: power law, traffic, scaling, techniques.

This subpackage is the primary contribution of the reproduced paper —
everything needed to answer "how many cores can a future CMP support
under a memory-traffic budget, with and without bandwidth-conservation
techniques".
"""

from .amdahl import (
    CombinedDesignPoint,
    CombinedWallModel,
    asymmetric_speedup,
    best_symmetric_design,
    dynamic_speedup,
    symmetric_speedup,
)
from .area import ChipDesign, cache_bytes_for_ceas, ceas_for_cache_bytes
from .area_overheads import (
    InterconnectModel,
    OverheadAwareWallModel,
    UncoreModel,
)
from .combos import PAPER_COMBINATIONS, TechniqueStack, paper_combination
from .heterogeneous import (
    BASE_CORE,
    BIG_CORE,
    LITTLE_CORE,
    CoreType,
    HeterogeneousMix,
    HeterogeneousWallModel,
    MixSolution,
)
from .memo import CacheStats, MemoCache, ModelKey
from .multithreading import MultithreadedWallModel, SMTParameters
from .roadmap import (
    FLAT_ROADMAP,
    ITRS_ROADMAP,
    OPTIMISTIC_ROADMAP,
    BandwidthRoadmap,
    RoadmapPoint,
    wall_onset,
)
from .sensitivity import Elasticities, elasticities, tornado
from .powerlaw import (
    ALPHA_AVERAGE,
    ALPHA_COMMERCIAL_AVG,
    ALPHA_COMMERCIAL_MAX,
    ALPHA_COMMERCIAL_MIN,
    ALPHA_SPEC2006_AVG,
    PowerLawMissModel,
)
from .power import PowerAwarePoint, PowerAwareWallModel, PowerParameters
from .presets import (
    TABLE2_ROWS,
    Table2Row,
    paper_baseline_design,
    paper_baseline_model,
)
from .scaling import (
    PAPER_GENERATION_FACTORS,
    BandwidthWallModel,
    GenerationPoint,
    ScalingSolution,
)
from .sharing import DataSharingModel
from .solver import BracketError, floor_cores, solve_increasing
from .techniques import (
    ALL_TECHNIQUE_TYPES,
    NEUTRAL_EFFECT,
    AssumptionLevel,
    CacheCompression,
    CacheLinkCompression,
    Category,
    DRAMCache,
    LinkCompression,
    SectoredCache,
    SmallCacheLines,
    SmallerCores,
    Technique,
    TechniqueEffect,
    ThreeDStackedCache,
    UnusedDataFiltering,
)
from .traffic import TrafficModel, TrafficRatio

__all__ = [
    "ChipDesign",
    "cache_bytes_for_ceas",
    "ceas_for_cache_bytes",
    "PowerLawMissModel",
    "ALPHA_AVERAGE",
    "ALPHA_COMMERCIAL_AVG",
    "ALPHA_COMMERCIAL_MIN",
    "ALPHA_COMMERCIAL_MAX",
    "ALPHA_SPEC2006_AVG",
    "TrafficModel",
    "TrafficRatio",
    "BandwidthWallModel",
    "ScalingSolution",
    "GenerationPoint",
    "PAPER_GENERATION_FACTORS",
    "DataSharingModel",
    "TechniqueStack",
    "PAPER_COMBINATIONS",
    "paper_combination",
    "paper_baseline_design",
    "paper_baseline_model",
    "Table2Row",
    "TABLE2_ROWS",
    "AssumptionLevel",
    "Category",
    "Technique",
    "TechniqueEffect",
    "NEUTRAL_EFFECT",
    "ALL_TECHNIQUE_TYPES",
    "CacheCompression",
    "DRAMCache",
    "ThreeDStackedCache",
    "UnusedDataFiltering",
    "SmallerCores",
    "LinkCompression",
    "SectoredCache",
    "SmallCacheLines",
    "CacheLinkCompression",
    "solve_increasing",
    "floor_cores",
    "BracketError",
    "ModelKey",
    "MemoCache",
    "CacheStats",
    # extensions (the paper's acknowledged limitations, modelled)
    "symmetric_speedup",
    "asymmetric_speedup",
    "dynamic_speedup",
    "best_symmetric_design",
    "CombinedWallModel",
    "CombinedDesignPoint",
    "CoreType",
    "HeterogeneousMix",
    "HeterogeneousWallModel",
    "MixSolution",
    "BIG_CORE",
    "BASE_CORE",
    "LITTLE_CORE",
    "SMTParameters",
    "MultithreadedWallModel",
    "BandwidthRoadmap",
    "RoadmapPoint",
    "wall_onset",
    "ITRS_ROADMAP",
    "OPTIMISTIC_ROADMAP",
    "FLAT_ROADMAP",
    "Elasticities",
    "elasticities",
    "tornado",
    "UncoreModel",
    "InterconnectModel",
    "OverheadAwareWallModel",
    "PowerParameters",
    "PowerAwareWallModel",
    "PowerAwarePoint",
]

#!/usr/bin/env python3
"""Technique shootout: which bandwidth-conservation technique buys the
most core scaling, alone and combined?

Evaluates all nine Table 2 techniques at their realistic assumptions
over four technology generations, then the paper's strongest stacks —
ending at the 183-core all-techniques result.
"""

from repro import (
    ALL_TECHNIQUE_TYPES,
    PAPER_COMBINATIONS,
    paper_baseline_model,
    paper_combination,
)

GENERATION_CEAS = (32, 64, 128, 256)


def main() -> None:
    model = paper_baseline_model()

    print("single techniques (realistic assumptions), cores per generation")
    print(f"{'technique':>10} {'2x':>5} {'4x':>5} {'8x':>5} {'16x':>5}")
    base = [model.supportable_cores(n).cores for n in GENERATION_CEAS]
    print(f"{'IDEAL':>10} {16:>5} {32:>5} {64:>5} {128:>5}")
    print(f"{'BASE':>10} " + " ".join(f"{c:>5}" for c in base))
    ranking = []
    for technique_type in ALL_TECHNIQUE_TYPES:
        technique = technique_type.realistic()
        cores = [
            model.supportable_cores(n, effect=technique.effect()).cores
            for n in GENERATION_CEAS
        ]
        ranking.append((technique_type.label, cores))
        print(f"{technique_type.label:>10} "
              + " ".join(f"{c:>5}" for c in cores))

    best_single = max(ranking, key=lambda item: item[1][-1])
    print(f"\nbest single technique at 16x: {best_single[0]} "
          f"({best_single[1][-1]} cores)")

    print("\ncombinations (Figure 16), cores at 16x:")
    results = []
    for name in PAPER_COMBINATIONS:
        stack = paper_combination(name)
        solution = model.supportable_cores(256, effect=stack.effect())
        results.append((name, solution))
    results.sort(key=lambda item: item[1].cores)
    for name, solution in results:
        marker = " <- super-proportional" if solution.cores > 128 else ""
        print(f"  {name:<26} {solution.cores:>4d} cores "
              f"({solution.core_area_share:.0%} of die){marker}")

    name, solution = results[-1]
    print(f"\nwinner: {name} -> {solution.cores} cores on "
          f"{solution.core_area_share:.0%} of the die "
          "(paper: 183 cores, 71%)")


if __name__ == "__main__":
    main()

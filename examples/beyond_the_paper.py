#!/usr/bin/env python3
"""Beyond the paper: the limitations of Section 3, modelled.

The paper scopes out heterogeneous CMPs, multithreaded cores, and
explicit bandwidth roadmaps.  This example exercises the extension
modules that lift each restriction:

1. roadmaps — when does the wall bite under ITRS pin growth vs the
   frequency/channel levers industry actually pulled?
2. SMT — how much worse is the wall when cores don't idle?
3. heterogeneity — does a big+little mix beat uniform cores under a
   fixed traffic budget?
4. Amdahl — for which workloads does the wall even matter?
"""

from repro import (
    BASE_CORE,
    BIG_CORE,
    CombinedWallModel,
    HeterogeneousMix,
    HeterogeneousWallModel,
    ITRS_ROADMAP,
    LITTLE_CORE,
    MultithreadedWallModel,
    OPTIMISTIC_ROADMAP,
    SMTParameters,
    paper_baseline_design,
    paper_baseline_model,
    wall_onset,
)


def roadmaps() -> None:
    print("== 1. bandwidth roadmaps: cores per generation ==")
    model = paper_baseline_model()
    for roadmap in (ITRS_ROADMAP, OPTIMISTIC_ROADMAP):
        onset, trajectory = wall_onset(model, roadmap, max_generations=5)
        cores = " ".join(f"{p.supportable_cores:>3d}" for p in trajectory)
        print(f"  {roadmap.name:<28} {cores}   (wall bites at gen {onset})")
    print("  proportional demand          " + " ".join(
        f"{8 * 2**g:>3d}" for g in range(1, 6)))


def smt() -> None:
    print("\n== 2. SMT cores tighten the wall (64-CEA die) ==")
    model = paper_baseline_model()
    for width in (1, 2, 4, 8):
        smt_model = MultithreadedWallModel(
            model, SMTParameters(threads_per_core=width,
                                 marginal_utilisation=0.5)
        )
        solution = smt_model.supportable_cores(64)
        print(f"  {width}-way SMT: {solution.cores:>3d} cores "
              f"({smt_model.severity_vs_single_threaded(64):.0%} fewer "
              "than single-threaded)")


def heterogeneity() -> None:
    print("\n== 3. heterogeneous mixes under constant traffic "
          "(64-CEA die) ==")
    model = HeterogeneousWallModel(paper_baseline_design())
    mixes = [
        HeterogeneousMix.uniform(BIG_CORE),
        HeterogeneousMix.uniform(BASE_CORE),
        HeterogeneousMix.uniform(LITTLE_CORE),
        HeterogeneousMix(((BIG_CORE, 1.0), (LITTLE_CORE, 4.0))),
    ]
    for mix in mixes:
        solution = model.solve_mix(mix, 64)
        print(f"  {mix.label:<18} {solution.total_cores:>5.1f} cores, "
              f"throughput {solution.throughput:5.2f}, "
              f"cache/core {solution.cache_per_core:.2f} CEA")


def amdahl() -> None:
    print("\n== 4. who cares about the wall? (16x die) ==")
    model = paper_baseline_model()
    for fraction in (0.5, 0.9, 0.99, 0.999):
        combined = CombinedWallModel(model, fraction)
        point = combined.design_point(256)
        print(f"  f={fraction:<6} usable {point.usable_cores:6.1f} cores, "
              f"speedup {point.speedup:6.1f}, binding: "
              f"{point.binding_constraint}")
    print("  (serial-heavy workloads never miss the denied cores; "
          "parallel ones pay full price)")


def main() -> None:
    roadmaps()
    smt()
    heterogeneity()
    amdahl()


if __name__ == "__main__":
    main()

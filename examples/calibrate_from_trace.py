#!/usr/bin/env python3
"""Calibrate the model from a trace file (the production workflow).

A user with a real workload would capture an address trace (from a
binary-instrumentation tool or simulator), save it in the repro-trace
format, and run this pipeline.  Here we *make* the trace from a
synthetic workload, but everything after `write_trace` works the same
for a real one:

1. write/read a `.trace.gz` file,
2. measure the miss curve and fit alpha from the trace,
3. ask the model what the trace's owner can expect from the next two
   technology generations, and which knob to lean on (tornado).
"""

import tempfile
from pathlib import Path

from repro import BandwidthWallModel, paper_baseline_design
from repro.analysis.calibration import measure_miss_curve
from repro.analysis.fitting import fit_miss_curve
from repro.core.sensitivity import tornado
from repro.workloads.commercial import commercial_generator
from repro.workloads.trace_io import read_trace, write_trace


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="bandwidth-wall-"))
    trace_path = workdir / "workload.trace.gz"

    # --- 1. capture (here: synthesise) a trace -----------------------
    generator = commercial_generator("OLTP-4", working_set_lines=1 << 13)
    count = write_trace(generator.accesses(80_000), trace_path)
    size_kb = trace_path.stat().st_size / 1024
    print(f"wrote {count} accesses to {trace_path.name} "
          f"({size_kb:.0f} KB gzipped)")

    # --- 2. measure and fit ------------------------------------------
    warm_generator = commercial_generator(
        "OLTP-4", working_set_lines=1 << 13
    )
    curve = measure_miss_curve(
        read_trace(trace_path),
        [2**k for k in range(4, 13)],
        warmup_stream=warm_generator.warmup_accesses(),
    )
    fit = fit_miss_curve(curve, max_lines=1024)
    print(f"fitted alpha = {fit.alpha:.3f} (R^2 = {fit.r_squared:.4f})")
    if not fit.conforms:
        print("warning: this workload does not follow the power law; "
              "model projections will extrapolate poorly")

    # --- 3. project and prioritise ------------------------------------
    model = BandwidthWallModel(paper_baseline_design(), alpha=fit.alpha)
    for ceas in (32, 64):
        solution = model.supportable_cores(ceas)
        print(f"{ceas:>3.0f} CEAs: {solution.cores} cores under constant "
              f"traffic ({solution.core_area_share:.0%} of die)")

    print("\nwhich knob matters most (+/-25% swings, 64 CEAs):")
    for name, low, high in tornado(model, 64):
        print(f"  {name:<20} {low:5.1f} .. {high:5.1f} cores")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The bandwidth wall, demonstrated cycle by cycle.

The paper's introduction argues that past the bandwidth envelope,
"adding more cores to the chip no longer yields any additional
throughput or performance".  This example shows that plateau twice:

* analytically (per-core demand vs channel capacity), and
* with the event-driven simulation of cores stalling on a shared
  bounded channel — including the exploding queueing delay,

then shows link compression (a direct technique) pushing the wall out,
while more cache (an indirect technique) moves it via the power law.
"""

from repro.core import PowerLawMissModel
from repro.memory import (
    AnalyticThroughputModel,
    BoundedBandwidthSimulation,
    CoreParameters,
)

CHANNEL_BYTES_PER_CYCLE = 2.0
CORE_COUNTS = (1, 2, 4, 8, 12, 16, 24, 32)


def show_curve(title: str, core: CoreParameters,
               bytes_per_cycle: float) -> None:
    analytic = AnalyticThroughputModel(core, bytes_per_cycle)
    simulation = BoundedBandwidthSimulation(core, bytes_per_cycle)
    print(f"\n== {title} (saturation at "
          f"{analytic.saturation_cores():.1f} cores) ==")
    print(f"{'cores':>6} {'analytic IPC':>13} {'simulated IPC':>14} "
          f"{'queue delay':>12}")
    for cores in CORE_COUNTS:
        result = simulation.run(cores, instructions_per_core=4000)
        print(f"{cores:>6} {analytic.chip_throughput(cores):>13.2f} "
              f"{result.chip_ipc:>14.2f} "
              f"{result.mean_queueing_delay:>10.1f}cy")


def main() -> None:
    law = PowerLawMissModel(alpha=0.5, baseline_miss_rate=0.02,
                            baseline_cache_size=1.0)
    base_core = CoreParameters(miss_rate=law.miss_rate(1.0))
    show_curve("baseline: 1 CEA of cache per core", base_core,
               CHANNEL_BYTES_PER_CYCLE)

    # Indirect relief: 4x the cache per core halves the miss rate
    # (alpha = 0.5), halving each core's bandwidth demand.
    big_cache_core = CoreParameters(miss_rate=law.miss_rate(4.0))
    show_curve("indirect: 4x cache per core (power law halves misses)",
               big_cache_core, CHANNEL_BYTES_PER_CYCLE)

    # Direct relief: 2x link compression doubles effective bandwidth.
    show_curve("direct: 2x link compression (half the bytes per miss)",
               CoreParameters(miss_rate=base_core.miss_rate, line_bytes=32),
               CHANNEL_BYTES_PER_CYCLE)

    print("\nboth relief valves double the wall's position; the direct one "
          "does it without spending die area on cache.")


if __name__ == "__main__":
    main()

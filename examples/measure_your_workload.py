#!/usr/bin/env python3
"""End-to-end substrate demo: measure a workload, then feed the model.

This walks the full measurement pipeline the paper's inputs came from:

1. synthesise a commercial-like address stream (OLTP-4 preset),
2. measure its miss-rate-vs-size curve (stack-distance profiler) and fit
   alpha on log-log axes,
3. measure the write-back ratio and the unused-word fraction with the
   set-associative cache simulator,
4. measure compression effectiveness on the workload's data values with
   the real FPC engine and value-cache link compressor,
5. feed every measured number into the analytical model and report how
   many cores the next generation supports.
"""

from repro.analysis.calibration import calibrate_workload
from repro.compression.link import measure_link_ratio
from repro.compression.ratios import ENGINES, measure_cache_ratio
from repro.core import (
    CacheLinkCompression,
    SmallCacheLines,
    TechniqueStack,
    paper_baseline_model,
)
from repro.workloads.commercial import commercial_generator
from repro.workloads.values import VALUE_MIXES, ValueGenerator

WORKLOAD = "OLTP-4"
ACCESSES = 80_000
WORKING_SET_LINES = 1 << 13


def make_stream():
    return commercial_generator(
        WORKLOAD, working_set_lines=WORKING_SET_LINES
    ).accesses(ACCESSES)


def make_warmup():
    return commercial_generator(
        WORKLOAD, working_set_lines=WORKING_SET_LINES
    ).warmup_accesses()


def main() -> None:
    # --- steps 1-3: address-stream measurements --------------------------
    print(f"calibrating workload {WORKLOAD!r} "
          f"({ACCESSES} accesses, {WORKING_SET_LINES} lines)...")
    calibration = calibrate_workload(
        WORKLOAD, make_stream, warmup_factory=make_warmup,
        fit_max_lines=1024,
    )
    print(f"  fitted alpha         : {calibration.alpha:.3f} "
          f"(R^2 = {calibration.fit.r_squared:.4f})")
    print(f"  write-back ratio     : {calibration.writeback_ratio:.2f} "
          "write-backs per miss")
    print(f"  unused-word fraction : "
          f"{calibration.unused_word_fraction:.0%} "
          "(paper's realistic assumption: 40%)")

    # --- step 4: compression measurements --------------------------------
    values = ValueGenerator(VALUE_MIXES["commercial"], seed=1)
    lines = list(values.lines(400))
    fpc_ratio = measure_cache_ratio(lines, ENGINES["fpc"], "fpc").ratio
    link_ratio = measure_link_ratio(lines)
    print(f"  FPC cache compression: {fpc_ratio:.2f}x")
    print(f"  link compression     : {link_ratio:.2f}x")

    # --- step 5: feed the model -----------------------------------------
    model = paper_baseline_model(alpha=calibration.alpha)
    base = model.supportable_cores(32)
    stack = TechniqueStack((
        CacheLinkCompression(min(fpc_ratio, link_ratio)),
        SmallCacheLines(calibration.unused_word_fraction),
    ))
    boosted = model.supportable_cores(32, effect=stack.effect())
    print(f"\nnext-generation cores for this workload:")
    print(f"  no techniques        : {base.cores}")
    print(f"  {stack.label:<21}: {boosted.cores}")
    print("\nevery input above was *measured* from the substrates, not "
          "assumed.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: how hard does the bandwidth wall bite?

Builds the paper's Niagara2-like baseline (8 cores + 8 CEAs of L2 on a
16-CEA die, alpha = 0.5) and asks the model the paper's two headline
questions:

1. With twice the transistors next generation, how many cores fit under
   a constant memory-traffic budget?  (11, not 16.)
2. Four generations out (16x transistors), how far can cores scale?
   (24, not 128 — with 90% of the die spent on cache.)
"""

from repro import (
    ChipDesign,
    BandwidthWallModel,
    TrafficModel,
    paper_baseline_model,
)


def main() -> None:
    model = paper_baseline_model()
    baseline = model.baseline
    print(f"baseline: {baseline.num_cores:.0f} cores, "
          f"{baseline.cache_ceas:.0f} CEAs of cache "
          f"({baseline.cache_bytes() / 2**20:.0f} MB), alpha={model.alpha}")

    # --- question 1: the next generation --------------------------------
    next_gen = model.supportable_cores(32)
    print(f"\nnext generation (32 CEAs), constant traffic:")
    print(f"  supportable cores : {next_gen.cores} "
          f"(proportional would be 16)")
    print(f"  cache per core    : {next_gen.effective_cache_per_core:.2f} "
          "CEAs")

    relaxed = model.supportable_cores(32, traffic_budget=1.5)
    print(f"  with +50% bandwidth: {relaxed.cores} cores")

    # --- why: the traffic decomposition of Equation 5 -------------------
    traffic = TrafficModel(alpha=0.5)
    ratio = traffic.relative_traffic(
        ChipDesign(16, 8), ChipDesign(16, 12)
    )
    print(f"\nreallocating 4 cache CEAs to cores on today's die:")
    print(f"  traffic grows {ratio.total:.1f}x "
          f"({ratio.core_factor:.2f}x from cores, "
          f"{ratio.cache_factor:.2f}x from smaller caches)")

    # --- question 2: four generations out -------------------------------
    print("\nscaling under constant traffic:")
    print(f"  {'gen':>5} {'CEAs':>6} {'cores':>6} {'ideal':>6} "
          f"{'die share':>10}")
    for point in model.generation_study():
        solution = point.solution
        print(f"  {point.area_factor:>4.0f}x "
              f"{solution.design.total_ceas:>6.0f} "
              f"{point.cores:>6d} {point.ideal_cores:>6.0f} "
              f"{solution.core_area_share:>9.1%}")
    print("\nthe bandwidth wall: 24 cores instead of 128 at 16x.")


if __name__ == "__main__":
    main()

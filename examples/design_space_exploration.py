#!/usr/bin/env python3
"""Design-space exploration for a CMP architect.

A designer planning a chip two generations out (4x transistors) sweeps
the knobs the model exposes:

* bandwidth growth per generation (flat pins vs ITRS ~15%/gen vs 50%),
* workload sensitivity alpha (Figure 1's measured range),
* die split (how much traffic does each extra core cost?),
* data sharing (how much does a parallel workload relax the wall?).
"""

from repro import (
    ChipDesign,
    DataSharingModel,
    paper_baseline_design,
    paper_baseline_model,
)
from repro.core.presets import (
    BANDWIDTH_GROWTH_ITRS_PER_GENERATION,
    BANDWIDTH_GROWTH_OPTIMISTIC_NEXT_GEN,
)

TARGET_CEAS = 64  # two generations: 4x the 16-CEA baseline


def sweep_bandwidth_growth() -> None:
    print("== bandwidth growth per generation vs supportable cores "
          f"({TARGET_CEAS} CEAs) ==")
    model = paper_baseline_model()
    for label, growth in [
        ("flat (constant traffic)", 1.0),
        ("ITRS pins (~15%/gen)", BANDWIDTH_GROWTH_ITRS_PER_GENERATION),
        ("optimistic (+50%/gen)", BANDWIDTH_GROWTH_OPTIMISTIC_NEXT_GEN),
        ("keeps pace (2x/gen)", 2.0),
    ]:
        budget = growth**2  # two generations
        solution = model.supportable_cores(TARGET_CEAS,
                                           traffic_budget=budget)
        print(f"  {label:<26} budget {budget:4.2f}x -> "
              f"{solution.cores:>3d} cores")


def sweep_alpha() -> None:
    print("\n== workload alpha vs supportable cores (constant traffic) ==")
    for alpha in (0.25, 0.36, 0.48, 0.5, 0.62, 0.7):
        model = paper_baseline_model(alpha=alpha)
        solution = model.supportable_cores(TARGET_CEAS)
        print(f"  alpha={alpha:4.2f} -> {solution.cores:>3d} cores "
              f"({solution.core_area_share:.0%} of die)")


def sweep_die_split() -> None:
    print(f"\n== die split on the {TARGET_CEAS}-CEA die: traffic cost of "
          "each split ==")
    model = paper_baseline_model()
    for cores in (8, 16, 24, 32, 40, 48):
        traffic = model.relative_traffic(TARGET_CEAS, cores)
        flag = "  <= fits constant-traffic budget" if traffic <= 1 else ""
        print(f"  {cores:>3d} cores / {TARGET_CEAS - cores:>3d} cache CEAs: "
              f"traffic {traffic:5.2f}x{flag}")


def sweep_sharing() -> None:
    print("\n== data sharing vs cores (shared L2, 64 CEAs, proportional "
          "target 32) ==")
    sharing = DataSharingModel(paper_baseline_design())
    for fraction in (0.0, 0.2, 0.4, 0.6, 0.8):
        traffic = sharing.relative_traffic(TARGET_CEAS, 32, fraction)
        print(f"  {fraction:.0%} shared -> traffic {traffic:5.2f}x")
    needed = sharing.required_sharing_fraction(TARGET_CEAS, 32)
    print(f"  constant traffic with 32 cores needs {needed:.0%} sharing "
          "(paper: 63%)")


def main() -> None:
    sweep_bandwidth_growth()
    sweep_alpha()
    sweep_die_split()
    sweep_sharing()


if __name__ == "__main__":
    main()
